"""Run manifests: enough provenance to replay any figure run.

A manifest is written next to the results of every observed run and records
what was run (command, config), with what inputs (seeds), from which code
(git revision, dirty flag, package version), on what substrate (python,
platform), and how long it took.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone

from repro.version import __version__


def git_revision(cwd: str | None = None) -> dict[str, object] | None:
    """The current git revision and dirty flag, or ``None`` outside a repo."""
    try:
        root = cwd or os.path.dirname(os.path.abspath(__file__))
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
        if rev.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
        return {
            "revision": rev.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return None


def build_manifest(
    run_id: str,
    command: str,
    config: dict | None = None,
    seeds: dict[str, int] | None = None,
    wall_s: float | None = None,
    outputs: list[str] | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest dict for one run."""
    manifest = {
        "schema": "repro.obs.manifest/1",
        "run_id": run_id,
        "command": command,
        "generated": datetime.now(timezone.utc).isoformat(),
        "repro_version": __version__,
        "git": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "config": config or {},
        "seeds": seeds or {},
    }
    if wall_s is not None:
        manifest["wall_s"] = round(wall_s, 3)
    if outputs:
        manifest["outputs"] = list(outputs)
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path, manifest: dict) -> None:
    """Serialize a manifest to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
