"""Low-priority CPU workloads and synthetic aggressors."""

from repro.workloads.cpu.aggressors import (
    dram_aggressor_profile,
    llc_aggressor_profile,
    remote_dram_profile,
)
from repro.workloads.cpu.base import BatchProfile, BatchTask
from repro.workloads.cpu.catalog import cpu_workload, cpu_workload_names
from repro.workloads.cpu.cpuml import cpuml_profile
from repro.workloads.cpu.stitch import stitch_profile
from repro.workloads.cpu.stream import stream_profile

__all__ = [
    "BatchProfile",
    "BatchTask",
    "cpu_workload",
    "cpu_workload_names",
    "cpuml_profile",
    "dram_aggressor_profile",
    "llc_aggressor_profile",
    "remote_dram_profile",
    "stitch_profile",
    "stream_profile",
]
