"""Stream: the synthetic streaming-traversal batch workload (Section V-A).

Stream traverses a large array that does not fit in any platform's LLC: it is
almost purely bandwidth-bound, benefits enormously from hardware prefetching,
and leaves essentially no reusable cache footprint.
"""

from __future__ import annotations

from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.cpu.base import BatchProfile


def stream_profile(threads: int = 8) -> BatchProfile:
    """The Stream workload running ``threads`` traversal threads."""
    return BatchProfile(
        name="stream",
        phase=HostPhaseProfile(
            bw_gbps=6.5 * threads,
            mem_fraction=0.95,
            bw_bound_weight=1.0,
            working_set_mb=0.0,
            llc_miss_traffic_gain=0.0,
            llc_speed_sensitivity=0.0,
            smt_aggression=0.15,
            smt_sensitivity=0.1,
            prefetch=PrefetchProfile(
                traffic_gain=1.25, off_demand=0.50, off_speed=0.50
            ),
            threads=threads,
        ),
        unit_rate_per_thread=1.0,
    )
