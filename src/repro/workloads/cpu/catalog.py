"""Registry of low-priority CPU workloads by name.

Experiments refer to CPU workloads by the names the paper uses; the catalog
maps a name plus an intensity knob (instances / threads / level) to a
:class:`~repro.workloads.cpu.base.BatchProfile`.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.cpu.aggressors import (
    dram_aggressor_profile,
    llc_aggressor_profile,
    remote_dram_profile,
)
from repro.workloads.cpu.base import BatchProfile
from repro.workloads.cpu.cpuml import cpuml_profile
from repro.workloads.cpu.stitch import stitch_profile
from repro.workloads.cpu.stream import stream_profile


def cpu_workload_names() -> list[str]:
    """Names accepted by :func:`cpu_workload`."""
    return ["stream", "stitch", "cpuml", "llc", "dram", "remote-dram"]


def cpu_workload(name: str, intensity: int | str = 1) -> BatchProfile:
    """Build a CPU workload profile.

    ``intensity`` means: Stitch — instance count; CPUML — thread count;
    Stream — thread count; aggressors — the level string ("L"/"M"/"H").
    """
    key = name.lower()
    if key == "stream":
        return stream_profile(threads=int(intensity) if intensity else 8)
    if key == "stitch":
        return stitch_profile(instances=int(intensity))
    if key == "cpuml":
        return cpuml_profile(threads=int(intensity))
    if key == "llc":
        return llc_aggressor_profile()
    if key == "dram":
        return dram_aggressor_profile(str(intensity))
    if key == "remote-dram":
        return remote_dram_profile(str(intensity))
    raise WorkloadError(
        f"unknown CPU workload {name!r}; expected one of {cpu_workload_names()}"
    )
