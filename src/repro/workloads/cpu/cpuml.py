"""CPUML: production CPU-based CNN training (TensorFlow-Slim; Section V-A).

CPU training is compute-dominant with moderate memory traffic — a much
gentler aggressor than Stitch, which is why the RNN1+CPUML mix in Fig 10
exerts less bandwidth pressure than CNN1+Stitch in Fig 9.
"""

from __future__ import annotations

from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.cpu.base import BatchProfile


def cpuml_profile(threads: int = 2) -> BatchProfile:
    """CPUML training with ``threads`` worker threads (the Fig 10 sweep)."""
    return BatchProfile(
        name="cpuml",
        phase=HostPhaseProfile(
            bw_gbps=3.8 * threads,
            mem_fraction=0.35,
            bw_bound_weight=0.55,
            working_set_mb=14.0,
            llc_intensity=1.3,
            llc_miss_traffic_gain=0.3,
            llc_speed_sensitivity=0.25,
            smt_aggression=0.25,
            smt_sensitivity=0.2,
            prefetch=PrefetchProfile(
                traffic_gain=1.30, off_demand=0.70, off_speed=0.78
            ),
            threads=threads,
        ),
        unit_rate_per_thread=1.0,
    )
