"""Synthetic antagonists from the sensitivity studies (Sections III-B, VI-A).

* **LLC** — dataset sized to just fit the LLC; contends for the last-level
  cache, private caches and in-pipeline resources through SMT.
* **DRAM** — traverses an array far larger than the LLC; contends for DRAM
  bandwidth. Built at three aggressiveness levels (L/M/H) for Fig 7.
* **Remote DRAM** — the DRAM aggressor with part of its dataset and threads
  on the remote socket; the locality split itself is applied by the
  experiment through :class:`~repro.hostif.numactl.NumaPolicy`.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.cpu.base import BatchProfile

#: (threads, per-thread GB/s) for the paper's three aggressor levels.
AGGRESSOR_LEVELS: dict[str, tuple[int, float]] = {
    "L": (4, 5.5),
    "M": (6, 6.5),
    "H": (8, 7.0),
}


def llc_aggressor_profile(threads: int = 8) -> BatchProfile:
    """The LLC/pipeline antagonist: hot set just fitting the cache."""
    return BatchProfile(
        name="llc-aggressor",
        phase=HostPhaseProfile(
            bw_gbps=0.4 * threads,
            mem_fraction=0.55,
            bw_bound_weight=0.1,
            working_set_mb=30.0,
            llc_intensity=3.0,
            llc_miss_traffic_gain=1.5,
            llc_speed_sensitivity=0.5,
            smt_aggression=0.70,
            smt_sensitivity=0.1,
            prefetch=PrefetchProfile(
                traffic_gain=1.05, off_demand=0.9, off_speed=0.92
            ),
            threads=threads,
        ),
        unit_rate_per_thread=1.0,
    )


def dram_aggressor_profile(level: str = "H") -> BatchProfile:
    """The DRAM-bandwidth antagonist at aggressiveness ``level`` (L/M/H)."""
    try:
        threads, per_thread_gbps = AGGRESSOR_LEVELS[level]
    except KeyError:
        raise WorkloadError(
            f"unknown aggressor level {level!r}; expected one of "
            f"{sorted(AGGRESSOR_LEVELS)}"
        ) from None
    return BatchProfile(
        name=f"dram-aggressor-{level}",
        phase=HostPhaseProfile(
            bw_gbps=per_thread_gbps * threads,
            mem_fraction=0.97,
            bw_bound_weight=1.0,
            working_set_mb=0.0,
            smt_aggression=0.1,
            smt_sensitivity=0.05,
            prefetch=PrefetchProfile(
                traffic_gain=1.30, off_demand=0.50, off_speed=0.50
            ),
            threads=threads,
        ),
        unit_rate_per_thread=1.0,
    )


def remote_dram_profile(level: str = "H") -> BatchProfile:
    """The Remote-DRAM antagonist: identical traffic shape to DRAM.

    The remote data/thread split is configured by the experiment via
    ``NumaPolicy.membind_weighted`` and core placement; the profile itself is
    the same stream of traffic.
    """
    profile = dram_aggressor_profile(level)
    from dataclasses import replace

    return replace(profile, name=f"remote-dram-aggressor-{level}")
