"""Steady-state batch CPU tasks.

Batch tasks (Stream, Stitch, CPUML, and the synthetic aggressors) run one
perpetual phase: a fixed per-thread unit rate scaled by the contention speed
factor. Their *throughput* in units/second is what Figs 9b/10c/13 normalize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.contention import Priority, SolveResult, TrafficSource
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.metrics.throughput import ThroughputMeter
from repro.workloads.base import HostPhaseProfile, Task, phase_speed


@dataclass(frozen=True)
class BatchProfile:
    """A batch workload: its host phase plus a nominal unit rate."""

    name: str
    phase: HostPhaseProfile
    #: Work units/second per thread at standalone full speed.
    unit_rate_per_thread: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_rate_per_thread <= 0:
            raise ConfigurationError("unit_rate_per_thread must be positive")

    def with_threads(self, threads: int) -> "BatchProfile":
        """A copy of this profile running ``threads`` runnable threads."""
        from dataclasses import replace

        return replace(self, phase=replace(self.phase, threads=threads))

    def scaled_to_threads(self, threads: int) -> "BatchProfile":
        """A copy resized to ``threads`` threads with demand and footprint
        scaled proportionally — used to split a job between the low-priority
        subdomain and a backfilled remainder (Section IV-C)."""
        from dataclasses import replace

        if threads <= 0:
            raise ConfigurationError("threads must be positive")
        ratio = threads / self.phase.threads
        return replace(
            self,
            phase=replace(
                self.phase,
                threads=threads,
                bw_gbps=self.phase.bw_gbps * ratio,
                working_set_mb=self.phase.working_set_mb * ratio,
            ),
        )


class BatchTask(Task):
    """A forever-running batch job draining work units at a fluid rate."""

    def __init__(
        self,
        task_id: str,
        machine: Machine,
        placement: Placement,
        profile: BatchProfile,
        warmup_until: float = 0.0,
    ) -> None:
        super().__init__(task_id, machine, placement, priority=Priority.LOW)
        self.profile = profile
        self.meter = ThroughputMeter(warmup_until=warmup_until)
        self._speed = 0.0
        #: id(result) -> (result, speed); solve results are interned by the
        #: solver cache so the same few identities recur.
        self._speed_memo: dict[int, tuple] = {}

    # ---------------------------------------------------------- protocol
    def traffic_sources(self) -> list[TrafficSource]:
        if not self.started or self.parked:
            return []
        return [self._make_source(self.profile.phase)]

    def sync(self, now: float) -> None:
        self.meter.sync(now)

    def apply_rates(self, result: SolveResult, now: float) -> None:
        if self.parked:
            self._speed = 0.0
            self.meter.set_rate(0.0, now)
            return
        memo = self._speed_memo.get(id(result))
        if memo is not None and memo[0] is result:
            speed = memo[1]
            if speed == self._speed:
                # The meter already drains at this rate; integration is
                # linear, so re-installing the same rate is a no-op.
                return
        else:
            rates = result.rates_for(f"{self.task_id}:host")
            speed = phase_speed(rates, self.profile.phase)
            if len(self._speed_memo) >= 128:
                self._speed_memo.clear()
            self._speed_memo[id(result)] = (result, speed)
        self._speed = speed
        nominal = self.profile.unit_rate_per_thread * self.profile.phase.threads
        self.meter.set_rate(nominal * speed, now)

    # ----------------------------------------------------------- metrics
    @property
    def speed(self) -> float:
        """Current contention speed factor (1.0 = standalone full speed)."""
        return self._speed

    def throughput(self, measurement_end: float) -> float:
        """Units/second over the post-warmup window."""
        return self.meter.throughput(measurement_end)
