"""Stitch: production batch job stitching Street View panoramas (Section V-A).

Image stitching streams pixel tiles through blending kernels: heavily
memory-bound with a modest reusable tile cache, and an aggressive bandwidth
consumer — the paper pairs it with CNN1 as the most challenging mix.
"""

from __future__ import annotations

from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.cpu.base import BatchProfile

#: Threads one Stitch instance runs (the paper sweeps instance count).
STITCH_THREADS_PER_INSTANCE = 4


def stitch_profile(instances: int = 1) -> BatchProfile:
    """``instances`` Stitch jobs (4 threads each) as one aggregate task."""
    threads = STITCH_THREADS_PER_INSTANCE * instances
    return BatchProfile(
        name="stitch",
        phase=HostPhaseProfile(
            bw_gbps=4.6 * threads,
            mem_fraction=0.80,
            bw_bound_weight=0.85,
            working_set_mb=6.0 * instances,
            llc_intensity=1.0,
            llc_miss_traffic_gain=0.15,
            llc_speed_sensitivity=0.12,
            smt_aggression=0.2,
            smt_sensitivity=0.15,
            prefetch=PrefetchProfile(
                traffic_gain=1.35, off_demand=0.55, off_speed=0.60
            ),
            threads=threads,
        ),
        unit_rate_per_thread=1.0,
    )
