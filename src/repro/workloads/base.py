"""Shared workload framework: tasks, host-phase profiles, speed computation.

A *task* is anything attachable to a :class:`~repro.hw.machine.Machine`. It
declares traffic sources and converts the solver's per-source rate factors
into progress on its fluid work. The conversion is the same for every host
phase in the library and lives in :func:`phase_speed`:

    speed = core_throttle * prefetch * llc * smt * cpu_share
            / ((1 - mem_fraction) + mem_fraction * memory_stretch)

i.e. the non-memory part of the phase scales with core-level factors, and the
memory-bound part additionally stretches with bandwidth grant / loaded
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, WorkloadError
from repro.hw.contention import Priority, SolveResult, SourceRates, TrafficSource
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.prefetcher import PrefetchProfile
from repro.units import clamp


@dataclass(frozen=True)
class HostPhaseProfile:
    """Contention-relevant traits of one host-side phase.

    Attributes:
        bw_gbps: useful memory bandwidth demand at full speed.
        mem_fraction: fraction of the phase's standalone time that is
            memory-bound (0 = pure compute, 1 = pure memory).
        bw_bound_weight: how bandwidth-bound (vs latency-bound) the memory
            part is; streaming phases ~1, pointer-chasing phases ~0.
        working_set_mb: hot LLC footprint.
        llc_miss_traffic_gain: extra DRAM traffic multiplier at 0 % hit rate.
        llc_speed_sensitivity: speed lost at 0 % hit rate.
        smt_sensitivity / smt_aggression: SMT sibling interaction strengths.
        prefetch: response to prefetcher toggling.
        threads: runnable threads during this phase.
    """

    bw_gbps: float = 1.0
    mem_fraction: float = 0.3
    bw_bound_weight: float = 0.5
    working_set_mb: float = 0.0
    llc_intensity: float = 1.0
    llc_miss_traffic_gain: float = 0.0
    llc_speed_sensitivity: float = 0.0
    smt_sensitivity: float = 0.0
    smt_aggression: float = 0.0
    prefetch: PrefetchProfile = field(default_factory=PrefetchProfile)
    threads: int = 1

    def __post_init__(self) -> None:
        if self.bw_gbps < 0:
            raise ConfigurationError("bw_gbps must be >= 0")
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise ConfigurationError("mem_fraction must be in [0, 1]")
        if not 0.0 <= self.bw_bound_weight <= 1.0:
            raise ConfigurationError("bw_bound_weight must be in [0, 1]")
        if self.threads <= 0:
            raise ConfigurationError("threads must be positive")


def phase_speed(rates: SourceRates, profile: HostPhaseProfile) -> float:
    """Speed multiplier for a host phase under the given rate factors.

    The compute part of the phase scales with core-occupancy factors; the
    memory-bound part additionally stretches with bandwidth grant, loaded
    latency, distress throttling, prefetcher state and LLC misses (see
    :meth:`~repro.hw.contention.SourceRates.memory_stretch`).
    """
    base = rates.compute_speed()
    stretch = rates.memory_stretch(profile.bw_bound_weight)
    slowdown = (1.0 - profile.mem_fraction) + profile.mem_fraction * stretch
    return clamp(base / max(slowdown, 1e-9), 1e-6, 10.0)


class Task:
    """Base class for everything attachable to a machine.

    Subclasses implement :meth:`traffic_sources`, :meth:`sync` and
    :meth:`apply_rates` (the :class:`~repro.hw.machine.AttachedTask`
    protocol) plus :meth:`start`.
    """

    def __init__(
        self,
        task_id: str,
        machine: Machine,
        placement: Placement,
        priority: Priority = Priority.LOW,
    ) -> None:
        self.task_id = task_id
        self.machine = machine
        self.sim = machine.sim
        self._placement = placement
        self.priority = priority
        self.started = False
        #: Parked tasks are runnable-nowhere: they emit no traffic and make
        #: no progress (the freezer/empty-cpuset state a controller puts a
        #: task in when it throttles it to zero cores).
        self.parked = False
        #: (profile, suffix, demand_scale) -> TrafficSource. Sources are
        #: immutable and derive only from the profile and the placement, so
        #: reusing instances keeps their memoized canonical keys warm across
        #: solves; cleared whenever the placement (or parked state) changes.
        self._source_cache: dict[tuple, TrafficSource] = {}

    # ----------------------------------------------------------- placement
    @property
    def placement(self) -> Placement:
        """Where this task currently runs."""
        return self._placement

    def set_placement(self, placement: Placement) -> None:
        """Adopt a new placement and trigger a contention re-solve."""
        self._placement = placement
        self._source_cache.clear()
        if self.started:
            self.machine.notify_change()

    def set_parked(self, parked: bool) -> None:
        """Park (run on zero cores) or unpark this task.

        A parked task stays attached to the machine but contributes no
        traffic sources and makes no forward progress until unparked —
        exactly what a cgroup with an empty effective cpuset (or a frozen
        cgroup) does on a real host.
        """
        if parked == self.parked:
            return
        self.parked = parked
        self._source_cache.clear()
        if self.started:
            self.machine.notify_change()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Attach to the machine and begin executing."""
        if self.started:
            raise WorkloadError(f"task {self.task_id!r} already started")
        self.started = True
        self.machine.attach(self)

    def stop(self) -> None:
        """Detach from the machine."""
        if not self.started:
            return
        self.started = False
        self.machine.detach(self.task_id)

    # --------------------------------------------------- protocol (abstract)
    def traffic_sources(self) -> list[TrafficSource]:
        """Active traffic sources; override in subclasses."""
        raise NotImplementedError

    def sync(self, now: float) -> None:
        """Integrate progress up to ``now``; override in subclasses."""
        raise NotImplementedError

    def apply_rates(self, result: SolveResult, now: float) -> None:
        """Adopt new solver rates; override in subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def _make_source(
        self, profile: HostPhaseProfile, suffix: str = "host", demand_scale: float = 1.0
    ) -> TrafficSource:
        """Build a traffic source for a host phase under this placement.

        Instances are cached until the placement changes: the solver memoizes
        per-source canonical keys on the instance, so handing it the same
        object for the same (profile, placement) makes repeat signature
        computations nearly free.
        """
        key = (profile, suffix, demand_scale)
        cached = self._source_cache.get(key)
        if cached is not None:
            return cached
        source = TrafficSource(
            source_id=f"{self.task_id}:{suffix}",
            task_id=self.task_id,
            demand_gbps=profile.bw_gbps * demand_scale,
            mem_weights=self._placement.mem_weights,
            cores=self._placement.cores,
            threads=profile.threads,
            clos=self._placement.clos,
            priority=self.priority,
            prefetch=profile.prefetch,
            working_set_mb=profile.working_set_mb,
            llc_intensity=profile.llc_intensity,
            llc_miss_traffic_gain=profile.llc_miss_traffic_gain,
            llc_speed_sensitivity=profile.llc_speed_sensitivity,
            smt_aggression=profile.smt_aggression,
            smt_sensitivity=profile.smt_sensitivity,
        )
        self._source_cache[key] = source
        return source
