"""Execution engines for the accelerated workloads.

Two engines cover the paper's four workloads:

* :class:`TrainingTask` — a step loop. In *overlap* mode (CNN1/CNN2 on Cloud
  TPU) the host in-feed phase runs concurrently with the accelerator step and
  the step completes when both finish, plus a short host-side sync. In
  *serial* mode (CNN3 on GPU) each step is accelerator compute followed by a
  host-side parameter-server update and a lock-step barrier across shards.
* :class:`InferenceServerTask` — a pipelined request server (RNN1 on TPU).
  Requests run several iterations of host compute (beam search), PCIe
  transfer, accelerator compute, and transfer back. Up to ``max_inflight``
  requests overlap; concurrent host phases share the task's cores.

Host phases are fluid works whose drain rate is the contention speed factor;
accelerator and PCIe service is independent of host memory contention — the
separation Fig 3 demonstrates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.accel.device import AcceleratorDevice, OpCost
from repro.accel.pcie import PcieLink
from repro.workloads.ml.distributed import LockStepBarrier
from repro.errors import ConfigurationError, WorkloadError
from repro.hw.contention import Priority, SolveResult, TrafficSource
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputMeter
from repro.sim.events import EventHandle
from repro.sim.tracing import TimelineTracer
from repro.sim.work import FluidWork
from repro.workloads.base import HostPhaseProfile, Task, phase_speed


def _noop() -> None:
    """Default host-phase continuation (picklable, unlike ``lambda: None``)."""


# --------------------------------------------------------------------------
# Training
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class TrainingSpec:
    """Static description of an accelerated training workload."""

    name: str
    platform: str
    #: Accelerator time per training step, seconds.
    accel_step_time: float
    #: Standalone host time of the per-step host phase (in-feed or PS
    #: update), seconds.
    host_time: float
    host: HostPhaseProfile
    #: Standalone host time of the short per-step synchronization, seconds.
    sync_time: float
    sync: HostPhaseProfile
    #: True: host phase overlaps accelerator compute (in-feed pipelines).
    #: False: host phase follows accelerator compute (parameter server).
    overlap: bool = True
    #: Lock-step shard fan-out; only meaningful for serial (PS) workloads.
    barrier_shards: int = 1
    barrier_cv: float = 0.12
    #: Cores the node scheduler gives the task by default.
    default_cores: int = 4

    def __post_init__(self) -> None:
        if min(self.accel_step_time, self.host_time) <= 0:
            raise ConfigurationError("step component times must be positive")
        if self.sync_time < 0:
            raise ConfigurationError("sync_time must be >= 0")
        if self.barrier_shards < 1:
            raise ConfigurationError("barrier_shards must be >= 1")

    def standalone_step_time(self) -> float:
        """Analytic standalone step latency (barrier noise excluded)."""
        if self.overlap:
            return max(self.accel_step_time, self.host_time) + self.sync_time
        return self.accel_step_time + self.host_time + self.sync_time


class TrainingTask(Task):
    """The step-loop engine for CNN1/CNN2/CNN3."""

    def __init__(
        self,
        task_id: str,
        machine: Machine,
        placement: Placement,
        spec: TrainingSpec,
        warmup_until: float = 0.0,
        barrier: LockStepBarrier | None = None,
    ) -> None:
        super().__init__(task_id, machine, placement, priority=Priority.HIGH)
        self.spec = spec
        self.meter = ThroughputMeter(warmup_until=warmup_until)
        self.steps_completed = 0
        self._barrier = barrier
        self._host_work: FluidWork | None = None
        self._host_profile: HostPhaseProfile | None = None
        self._host_handle: EventHandle | None = None
        self._host_on_complete: Callable[[], None] = _noop
        self._host_speed = 1.0
        self._accel_pending = False
        self._host_pending = False
        #: (id(result), id(profile)) -> (result, profile, speed). Solve
        #: results are interned by the solver cache, so the same handful of
        #: identities recurs; pinning the refs keeps ids valid.
        self._speed_memo: dict[tuple[int, int], tuple] = {}

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        super().start()
        self._begin_step()

    def stop(self) -> None:
        if self._host_handle is not None:
            self._host_handle.cancel()
            self._host_handle = None
        self._host_work = None
        super().stop()

    # ------------------------------------------------------------ protocol
    def traffic_sources(self) -> list[TrafficSource]:
        if not self.started or self._host_work is None or self._host_profile is None:
            return []
        return [self._make_source(self._host_profile)]

    def sync(self, now: float) -> None:
        # Deliberately lazy: fluid drain is linear between rate changes, so
        # deferred integration is lossless. The host work self-syncs inside
        # every ``set_rate`` and at phase completion, and the step meter
        # (rate 0, discrete ``add_units`` credits) syncs in ``_finish_step``
        # and on every ``throughput`` read.
        pass

    def apply_rates(self, result: SolveResult, now: float) -> None:
        work = self._host_work
        profile = self._host_profile
        if work is None or profile is None:
            return
        speed = self._phase_speed_for(result, profile)
        handle = self._host_handle
        if speed == self._host_speed and handle is not None and not handle.cancelled:
            # Rate unchanged and a completion event is pending: fluid
            # progress is linear, so the scheduled instant is still exact.
            return
        self._host_speed = speed
        work.set_rate(speed, now=now)
        self._reschedule_host()

    def _phase_speed_for(self, result: SolveResult, profile: HostPhaseProfile) -> float:
        key = (id(result), id(profile))
        memo = self._speed_memo.get(key)
        if memo is not None and memo[0] is result and memo[1] is profile:
            return memo[2]
        speed = phase_speed(result.rates_for(f"{self.task_id}:host"), profile)
        if len(self._speed_memo) >= 128:
            self._speed_memo.clear()
        self._speed_memo[key] = (result, profile, speed)
        return speed

    # ------------------------------------------------------------- metrics
    def performance(self, measurement_end: float) -> float:
        """Training steps per second over the post-warmup window."""
        return self.meter.throughput(measurement_end)

    # ------------------------------------------------------------ internal
    def _begin_step(self) -> None:
        if not self.started:
            return
        if self.spec.overlap:
            self._accel_pending = True
            self._host_pending = True
            self.sim.after(
                self.spec.accel_step_time,
                self._accel_done,
                label=f"{self.task_id}:accel",
            )
            self._start_host_phase(self.spec.host_time, self.spec.host, self._host_done)
        else:
            self.sim.after(
                self.spec.accel_step_time,
                self._serial_accel_done,
                label=f"{self.task_id}:accel",
            )

    # --- overlap mode -------------------------------------------------
    def _accel_done(self) -> None:
        if not self.started:
            return
        self._accel_pending = False
        self._maybe_sync_phase()

    def _host_done(self) -> None:
        self._host_pending = False
        self._maybe_sync_phase()

    def _maybe_sync_phase(self) -> None:
        if self._accel_pending or self._host_pending:
            return
        if self.spec.sync_time > 0:
            self._start_host_phase(
                self.spec.sync_time, self.spec.sync, self._finish_step
            )
        else:
            self._finish_step()

    # --- serial (parameter-server) mode --------------------------------
    def _serial_accel_done(self) -> None:
        if not self.started:
            return
        self._start_host_phase(
            self.spec.host_time,
            self.spec.host,
            partial(self._after_update, self.sim.now),
        )

    def _after_update(self, host_start: float) -> None:
        wait = 0.0
        if self._barrier is not None:
            local_latency = self.sim.now - host_start
            wait = self._barrier.barrier_wait(local_latency)
        if wait > 0:
            self.sim.after(
                wait, self._after_barrier, label=f"{self.task_id}:barrier"
            )
        else:
            self._after_barrier()

    def _after_barrier(self) -> None:
        if not self.started:
            return
        if self.spec.sync_time > 0:
            self._start_host_phase(
                self.spec.sync_time, self.spec.sync, self._finish_step
            )
        else:
            self._finish_step()

    # --- shared --------------------------------------------------------
    def _finish_step(self) -> None:
        if not self.started:
            return
        self.steps_completed += 1
        self.meter.sync(self.sim.now)
        self.meter.add_units(1.0)
        self._begin_step()

    def _start_host_phase(
        self,
        duration: float,
        profile: HostPhaseProfile,
        on_complete: Callable[[], None],
    ) -> None:
        self._host_work = FluidWork(duration, now=self.sim.now)
        self._host_profile = profile
        self._host_on_complete = on_complete
        self.machine.notify_change()  # publishes the new source; sets rates

    def _reschedule_host(self) -> None:
        if self._host_work is None:
            self._cancel_host_handle()
            return
        eta = self._host_work.eta()
        if eta == float("inf"):
            self._cancel_host_handle()
            return
        handle = self._host_handle
        if (
            handle is not None
            and not handle.cancelled
            and handle.time == self.sim.now + eta
        ):
            # The pending completion event already fires at exactly the
            # recomputed instant (typical when a re-solve leaves this task's
            # rate unchanged) — keep it instead of churning the event heap.
            return
        self._cancel_host_handle()
        self._host_handle = self.sim.after(
            eta, self._host_phase_event, label=f"{self.task_id}:host"
        )

    def _cancel_host_handle(self) -> None:
        if self._host_handle is not None:
            self._host_handle.cancel()
            self._host_handle = None

    def _host_phase_event(self) -> None:
        if self._host_work is None:
            return
        self._host_work.sync(self.sim.now)
        if not self._host_work.done and not self._host_work.retire_residue(
            now=self.sim.now
        ):
            self._reschedule_host()
            return
        self._host_work = None
        self._host_profile = None
        self._host_handle = None
        on_complete = self._host_on_complete
        self.machine.notify_change()  # the host source disappeared
        on_complete()


# --------------------------------------------------------------------------
# Inference
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class InferenceSpec:
    """Static description of a pipelined inference server."""

    name: str
    platform: str
    iterations_per_query: int
    #: Standalone host time per iteration (beam search etc.), seconds.
    host_time: float
    host: HostPhaseProfile
    #: Transfer sizes per iteration, GB.
    pcie_in_gb: float
    pcie_out_gb: float
    accel_op: OpCost
    #: Maximum requests in flight (pipeline depth).
    max_inflight: int = 8
    #: Outstanding requests kept by the closed-loop pipelined generator —
    #: chosen at the knee of the throughput-latency curve (Section III-A).
    pipeline_concurrency: int = 4
    #: Fraction of standalone capacity used when an *open-loop* generator is
    #: requested instead (latency-curve sweeps).
    target_load_fraction: float = 0.85
    default_cores: int = 3

    def __post_init__(self) -> None:
        if self.iterations_per_query <= 0:
            raise ConfigurationError("iterations_per_query must be positive")
        if self.host_time <= 0:
            raise ConfigurationError("host_time must be positive")
        if self.max_inflight <= 0:
            raise ConfigurationError("max_inflight must be positive")
        if not 0 < self.target_load_fraction <= 1:
            raise ConfigurationError("target_load_fraction must be in (0, 1]")

    def standalone_capacity(self, accel_spec, cores: int) -> float:
        """Analytic peak QPS with ``cores`` host cores, unloaded."""
        host_per_query = self.iterations_per_query * self.host_time
        host_parallelism = min(self.max_inflight, cores)
        host_cap = host_parallelism / host_per_query
        accel_per_query = self.iterations_per_query * self.accel_op.duration_on(
            accel_spec
        )
        accel_cap = 1.0 / accel_per_query
        return min(host_cap, accel_cap)

    def target_qps(self, accel_spec, cores: int) -> float:
        """The knee-load arrival rate used by the evaluation."""
        return self.target_load_fraction * self.standalone_capacity(accel_spec, cores)


@dataclass(eq=False, slots=True)
class _Lane:
    """One in-flight request."""

    request_start: float
    #: Service-demand multiplier (1.0 = the spec's nominal request).
    demand: float = 1.0
    iteration: int = 0
    work: FluidWork | None = None
    handle: EventHandle | None = None
    #: Completion callback, built once per lane so rate-change reschedules
    #: don't allocate a fresh closure each time.
    finisher: Callable[[], None] | None = None


class InferenceServerTask(Task):
    """The pipelined RNN1 inference server."""

    def __init__(
        self,
        task_id: str,
        machine: Machine,
        placement: Placement,
        spec: InferenceSpec,
        device: AcceleratorDevice,
        pcie_in: PcieLink,
        pcie_out: PcieLink,
        warmup_until: float = 0.0,
        tracer: TimelineTracer | None = None,
    ) -> None:
        super().__init__(task_id, machine, placement, priority=Priority.HIGH)
        self.spec = spec
        self.device = device
        self.pcie_in = pcie_in
        self.pcie_out = pcie_out
        self.recorder = LatencyRecorder(warmup_until=warmup_until)
        self.tracer = tracer
        self.completion_listeners: list[Callable[[float, float], None]] = []
        self._pending: deque[tuple[float, float]] = deque()
        self._lanes: set[_Lane] = set()
        self._host_lanes: set[_Lane] = set()
        self._host_speed = 1.0
        #: id(result) -> (result, speed); see TrainingTask._speed_memo.
        self._speed_memo: dict[int, tuple] = {}
        #: demand multiplier -> scaled OpCost. Demands come from a small set
        #: of trace job families, so this stays a handful of entries.
        self._op_memo: dict[float, OpCost] = {}
        self._lane_label = f"{task_id}:lane"
        self.submitted = 0

    # ----------------------------------------------------------- submission
    def submit(self, demand: float = 1.0) -> None:
        """Accept one request at the current simulated time.

        ``demand`` scales the request's service requirement — host compute,
        PCIe transfer volume and accelerator op — relative to the spec's
        nominal request (trace job families with heterogeneous accelerator
        demand). The default of 1.0 is exactly the pre-trace behaviour.
        """
        if not self.started:
            raise WorkloadError("server not started")
        if demand <= 0:
            raise WorkloadError(f"request demand must be positive, got {demand}")
        self.submitted += 1
        now = self.sim.now
        if len(self._lanes) < self.spec.max_inflight:
            self._start_lane(now, demand)
        else:
            self._pending.append((now, demand))

    @property
    def inflight(self) -> int:
        """Requests currently being processed."""
        return len(self._lanes)

    @property
    def queued(self) -> int:
        """Requests waiting for a free pipeline lane."""
        return len(self._pending)

    def abort(self) -> None:
        """Kill the server mid-flight: every queued and in-flight request
        is dropped without completing (a node crash, not a drain).

        Host-phase completion events are cancelled here; continuations an
        in-flight lane already registered with the PCIe links or the
        accelerator queue still fire, but the stopped-server guards in the
        pipeline stages turn them into no-ops, so no completion is ever
        reported for an aborted request.
        """
        for lane in list(self._lanes):
            if lane.handle is not None:
                lane.handle.cancel()
                lane.handle = None
            lane.work = None
        self._lanes.clear()
        had_host = bool(self._host_lanes)
        self._host_lanes.clear()
        self._pending.clear()
        if self.started and had_host:
            self.machine.notify_change()  # the host sources vanished

    # ------------------------------------------------------------ protocol
    def traffic_sources(self) -> list[TrafficSource]:
        if not self.started or not self._host_lanes:
            return []
        n = len(self._host_lanes)
        key = ("lanes", n)
        source = self._source_cache.get(key)
        if source is None:
            profile = self.spec.host
            source = TrafficSource(
                source_id=f"{self.task_id}:host",
                task_id=self.task_id,
                demand_gbps=profile.bw_gbps * n,
                mem_weights=self.placement.mem_weights,
                cores=self.placement.cores,
                threads=profile.threads * n,
                clos=self.placement.clos,
                priority=self.priority,
                prefetch=profile.prefetch,
                working_set_mb=profile.working_set_mb * min(n, 4),
                llc_intensity=profile.llc_intensity,
                llc_miss_traffic_gain=profile.llc_miss_traffic_gain,
                llc_speed_sensitivity=profile.llc_speed_sensitivity,
                smt_aggression=profile.smt_aggression,
                smt_sensitivity=profile.smt_sensitivity,
            )
            self._source_cache[key] = source
        return [source]

    def sync(self, now: float) -> None:
        # Deliberately lazy: lane works self-sync inside every ``set_rate``
        # and at completion, and nothing reads their remaining work between
        # rate changes, so eager integration here would be pure overhead.
        pass

    def apply_rates(self, result: SolveResult, now: float) -> None:
        if not self._host_lanes:
            return
        memo = self._speed_memo.get(id(result))
        if memo is not None and memo[0] is result:
            speed = memo[1]
        else:
            rates = result.rates_for(f"{self.task_id}:host")
            speed = phase_speed(rates, self.spec.host)
            if len(self._speed_memo) >= 128:
                self._speed_memo.clear()
            self._speed_memo[id(result)] = (result, speed)
        unchanged = speed == self._host_speed
        self._host_speed = speed
        # Safe to iterate the live set: nothing below mutates membership
        # (completion callbacks only run from the event loop, never inline).
        for lane in self._host_lanes:
            if lane.work is None:
                continue
            if (
                unchanged
                and lane.handle is not None
                and not lane.handle.cancelled
            ):
                # This lane already runs at ``speed`` with a valid pending
                # completion event — both its rate and event time are exact.
                continue
            lane.work.set_rate(speed, now=now)
            self._reschedule(lane)

    # ------------------------------------------------------------- metrics
    def performance(self, measurement_end: float) -> float:
        """Completed QPS over the post-warmup window."""
        return self.recorder.qps(measurement_end)

    def tail_latency(self, q: float = 95.0) -> float:
        """Tail latency over the post-warmup window, seconds."""
        return self.recorder.tail(q)

    # ------------------------------------------------------------ internal
    def _start_lane(self, request_start: float, demand: float = 1.0) -> None:
        lane = _Lane(request_start=request_start, demand=demand)
        lane.finisher = partial(self._host_complete, lane)
        self._lanes.add(lane)
        self._enter_host(lane)

    def _op_for(self, demand: float) -> OpCost:
        """The accelerator op scaled by ``demand`` (memoized per family)."""
        if demand == 1.0:
            return self.spec.accel_op
        op = self._op_memo.get(demand)
        if op is None:
            base = self.spec.accel_op
            op = OpCost(
                gflops=base.gflops * demand,
                local_bytes_gb=base.local_bytes_gb * demand,
            )
            self._op_memo[demand] = op
        return op

    def _enter_host(self, lane: _Lane) -> None:
        if not self.started:  # aborted server: drop the zombie lane
            return
        lane.work = FluidWork(self.spec.host_time * lane.demand, now=self.sim.now)
        self._host_lanes.add(lane)
        if self.tracer is not None and len(self._host_lanes) == 1:
            self.tracer.begin(self.task_id, "cpu", self.sim.now)
        self.machine.notify_change()

    def _reschedule(self, lane: _Lane) -> None:
        if lane.work is None:
            if lane.handle is not None:
                lane.handle.cancel()
                lane.handle = None
            return
        eta = lane.work.eta()
        if eta == float("inf"):
            if lane.handle is not None:
                lane.handle.cancel()
                lane.handle = None
            return
        if (
            lane.handle is not None
            and not lane.handle.cancelled
            and lane.handle.time == self.sim.now + eta
        ):
            # Unchanged completion instant — keep the pending event.
            return
        if lane.handle is not None:
            lane.handle.cancel()
        lane.handle = self.sim.after(eta, lane.finisher, label=self._lane_label)

    def _host_complete(self, lane: _Lane) -> None:
        if lane.work is None:
            return
        lane.work.sync(self.sim.now)
        if not lane.work.done and not lane.work.retire_residue(
            now=self.sim.now
        ):
            self._reschedule(lane)
            return
        lane.work = None
        if lane.handle is not None:
            lane.handle.cancel()
            lane.handle = None
        self._host_lanes.discard(lane)
        if self.tracer is not None and not self._host_lanes:
            self.tracer.end(self.task_id, "cpu", self.sim.now)
        self.machine.notify_change()
        self._enter_pcie_in(lane)

    def _enter_pcie_in(self, lane: _Lane) -> None:
        if self.tracer is not None:
            self.tracer.begin(self.task_id, "communication", self.sim.now)
        self.pcie_in.transfer(
            self.spec.pcie_in_gb * lane.demand, partial(self._enter_accel, lane)
        )

    def _enter_accel(self, lane: _Lane) -> None:
        if self.tracer is not None:
            self.tracer.end(self.task_id, "communication", self.sim.now)
            self.tracer.begin(self.task_id, "tpu", self.sim.now)
        self.device.submit(
            self._op_for(lane.demand), partial(self._enter_pcie_out, lane)
        )

    def _enter_pcie_out(self, lane: _Lane) -> None:
        if not self.started:  # aborted server: drop the zombie lane
            return
        if self.tracer is not None:
            self.tracer.end(self.task_id, "tpu", self.sim.now)
            self.tracer.begin(self.task_id, "communication", self.sim.now)
        self.pcie_out.transfer(
            self.spec.pcie_out_gb * lane.demand,
            partial(self._iteration_complete, lane),
        )

    def _iteration_complete(self, lane: _Lane) -> None:
        if not self.started:  # aborted server: drop the zombie lane
            return
        if self.tracer is not None:
            self.tracer.end(self.task_id, "communication", self.sim.now)
        lane.iteration += 1
        if lane.iteration < self.spec.iterations_per_query:
            self._enter_host(lane)
            return
        now = self.sim.now
        self._lanes.discard(lane)
        self.recorder.record(lane.request_start, now)
        for listener in list(self.completion_listeners):
            listener(lane.request_start, now)
        if self._pending and len(self._lanes) < self.spec.max_inflight:
            self._start_lane(*self._pending.popleft())
