"""Distributed-training substrate: shards, workers, and the step barrier.

CNN3 trains with the distributed-TensorFlow architecture of Fig 1: workers
compute gradients on accelerators, push them to parameter-server shards, and
wait for updated variables. Training steps are processed in lock-step, so
the *slowest* shard bounds service-level throughput — the "tail at scale"
amplification the paper cites. This module models the shard fan-out and the
barrier; the local shard's latency comes from the contention simulation
while remote shards are drawn from calibrated distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class LockStepBarrier:
    """The per-step barrier across parameter-server shards.

    One shard is *local* — its update latency is produced by the contention
    simulation. The remaining ``shards - 1`` are remote: their latencies are
    drawn from a Gamma distribution around the nominal standalone update time
    (shape set by the coefficient of variation). The barrier releases when
    the slowest shard finishes, so the step pays
    ``max(local_latency, max(remote draws))`` — amplifying any local
    interference across the whole service (Dean & Barroso's tail-at-scale
    effect, Section II-D).
    """

    def __init__(
        self,
        shards: int,
        nominal_latency: float,
        latency_cv: float = 0.12,
        rng: np.random.Generator | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        if nominal_latency <= 0:
            raise ConfigurationError("nominal_latency must be positive")
        if latency_cv < 0:
            raise ConfigurationError("latency_cv must be >= 0")
        self.shards = shards
        self.nominal_latency = nominal_latency
        self.latency_cv = latency_cv
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def remote_max(self) -> float:
        """Draw the slowest remote shard's latency for one step."""
        remote = self.shards - 1
        if remote == 0:
            return 0.0
        if self.latency_cv == 0:
            return self.nominal_latency
        cv2 = self.latency_cv ** 2
        shape = 1.0 / cv2
        scale = self.nominal_latency * cv2
        draws = self._rng.gamma(shape, scale, size=remote)
        return float(np.max(draws))

    def barrier_wait(self, local_latency: float) -> float:
        """Extra time the step waits *after* the local shard finished.

        Returns ``max(0, slowest_remote - local_latency)``.
        """
        if local_latency < 0:
            raise ConfigurationError("local_latency must be >= 0")
        return max(0.0, self.remote_max() - local_latency)


@dataclass(frozen=True)
class PsUpdateModel:
    """Analytic cost model for one parameter-server shard's per-step update.

    A shard aggregates gradients and applies the optimizer update — a
    memory-bandwidth-intensive scan over the variable partition (Section I,
    step 3 of Fig 1). The update cost scales with the parameter bytes owned
    by the shard and the optimizer's bytes-per-parameter footprint.
    """

    #: Parameter bytes owned by this shard, GB.
    shard_params_gb: float
    #: Optimizer traffic multiplier: bytes moved per parameter byte per step
    #: (read params + read grads + write params; Adam adds moment reads).
    optimizer_traffic_factor: float = 4.0
    #: Effective per-shard memory bandwidth at standalone, GB/s.
    standalone_bw_gbps: float = 18.0

    def __post_init__(self) -> None:
        if self.shard_params_gb <= 0:
            raise ConfigurationError("shard_params_gb must be positive")
        if self.optimizer_traffic_factor <= 0:
            raise ConfigurationError("optimizer_traffic_factor must be positive")
        if self.standalone_bw_gbps <= 0:
            raise ConfigurationError("standalone_bw_gbps must be positive")

    @property
    def bytes_per_step_gb(self) -> float:
        """Memory traffic of one update, GB."""
        return self.shard_params_gb * self.optimizer_traffic_factor

    @property
    def standalone_update_time(self) -> float:
        """Update latency at standalone bandwidth, seconds."""
        return self.bytes_per_step_gb / self.standalone_bw_gbps


@dataclass(frozen=True)
class ParameterServerShard:
    """One shard: an update model plus its position in the fan-out."""

    shard_id: int
    update: PsUpdateModel

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigurationError("shard_id must be >= 0")


@dataclass(frozen=True)
class WorkerModel:
    """Per-step worker costs around the accelerator compute.

    A worker computes gradients on its accelerator (step 1 of Fig 1),
    pushes them to the parameter servers (step 2), and pulls updated
    variables back (step 4). Push/pull cross the PCIe link and the
    datacenter network; the paper runs one GPU worker to keep network noise
    out, so the network term is a fixed per-step cost here.
    """

    #: Gradient bytes pushed per step, GB.
    gradient_gb: float
    #: Variable bytes pulled per step, GB.
    variable_gb: float
    #: Fixed network round-trip overhead per step, seconds.
    network_overhead: float = 2e-3

    def __post_init__(self) -> None:
        if self.gradient_gb < 0 or self.variable_gb < 0:
            raise ConfigurationError("transfer sizes must be >= 0")
        if self.network_overhead < 0:
            raise ConfigurationError("network_overhead must be >= 0")
