"""CNN2: Cloud TPU image-recognition training, variant two (Table I).

Also an in-feed workload, but with **high CPU intensity and medium host
memory intensity**: the in-feed pipeline does heavier decode/augmentation
work across more threads, moves more bytes, and keeps more slack against the
accelerator step — so it degrades less than CNN1 under the same pressure
(Fig 7c) but leans harder on the memory system when it does run.
"""

from __future__ import annotations

from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.ml.base import TrainingSpec


def cnn2_spec() -> TrainingSpec:
    """The CNN2 training specification."""
    return TrainingSpec(
        name="cnn2",
        platform="cloud-tpu",
        accel_step_time=100e-3,
        host_time=80e-3,
        host=HostPhaseProfile(
            bw_gbps=7.5,
            mem_fraction=0.42,
            bw_bound_weight=0.6,
            working_set_mb=16.0,
            llc_intensity=1.1,
            llc_miss_traffic_gain=0.3,
            llc_speed_sensitivity=0.2,
            smt_sensitivity=0.3,
            smt_aggression=0.15,
            prefetch=PrefetchProfile(
                traffic_gain=1.25, off_demand=0.72, off_speed=0.80
            ),
            threads=4,
        ),
        sync_time=5e-3,
        sync=HostPhaseProfile(
            bw_gbps=1.0,
            mem_fraction=0.25,
            bw_bound_weight=0.2,
            threads=1,
        ),
        overlap=True,
        default_cores=4,
    )
