"""RNN1: the TPU natural-language-processing inference server (Table I).

CPU-accelerator interaction: **beam search** — the host sorts and expands
partial hypotheses between accelerator calls. Medium CPU intensity, low host
memory intensity; latency-sensitive (pointer-heavy) rather than
bandwidth-bound. Requests are pipelined; each query runs several iterations
of host beam search, PCIe transfer, TPU matrix compute, and transfer back
(the Fig 3 timeline).
"""

from __future__ import annotations

from repro.accel.device import OpCost
from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.ml.base import InferenceSpec


def rnn1_spec() -> InferenceSpec:
    """The RNN1 inference-server specification."""
    return InferenceSpec(
        name="rnn1",
        platform="tpu",
        iterations_per_query=2,
        host_time=9e-3,
        host=HostPhaseProfile(
            bw_gbps=1.6,
            mem_fraction=0.22,
            bw_bound_weight=0.2,
            working_set_mb=3.0,
            llc_intensity=1.2,
            llc_miss_traffic_gain=0.4,
            llc_speed_sensitivity=0.20,
            smt_sensitivity=0.25,
            smt_aggression=0.1,
            prefetch=PrefetchProfile(
                traffic_gain=1.10, off_demand=0.85, off_speed=0.88
            ),
            threads=1,
        ),
        # ~3.6 MB each way over a 12 GB/s link: ~0.3 ms, matching the short
        # communication slices in Fig 3.
        pcie_in_gb=0.0036,
        pcie_out_gb=0.0036,
        # TPUv1 is local-memory bound on this model: 0.102 GB over 34 GB/s
        # gives a 3 ms matrix step per iteration.
        accel_op=OpCost(gflops=180.0, local_bytes_gb=0.102),
        max_inflight=8,
        target_load_fraction=0.85,
        default_cores=3,
    )
