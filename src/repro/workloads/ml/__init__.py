"""High-priority accelerated ML workloads (Table I)."""

from repro.workloads.ml.base import (
    InferenceServerTask,
    InferenceSpec,
    TrainingSpec,
    TrainingTask,
)
from repro.workloads.ml.catalog import (
    MlWorkloadFactory,
    ml_workload,
    ml_workload_names,
)

__all__ = [
    "InferenceServerTask",
    "InferenceSpec",
    "MlWorkloadFactory",
    "TrainingSpec",
    "TrainingTask",
    "ml_workload",
    "ml_workload_names",
]
