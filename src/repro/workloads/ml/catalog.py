"""Registry and factory for the accelerated ML workloads.

Experiments ask for a workload by name; the factory knows which host
platform and accelerator device it runs on and assembles the live task —
including, for inference, the knee-load open-loop generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.device import AcceleratorDevice
from repro.accel.pcie import PcieLink
from repro.accel.presets import cloud_tpu_device, gpu_device, tpu_v1_device
from repro.workloads.ml.distributed import LockStepBarrier
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.spec import (
    MachineSpec,
    cloud_tpu_host_spec,
    gpu_host_spec,
    tpu_host_spec,
)
from repro.sim.tracing import TimelineTracer
from repro.workloads.loadgen import ClosedLoopGenerator, OpenLoopGenerator
from repro.workloads.ml.base import (
    InferenceServerTask,
    InferenceSpec,
    TrainingSpec,
    TrainingTask,
)
from repro.workloads.ml.cnn1 import cnn1_spec
from repro.workloads.ml.cnn2 import cnn2_spec
from repro.workloads.ml.cnn3 import cnn3_spec
from repro.workloads.ml.rnn1 import rnn1_spec

_HOST_SPECS = {
    "tpu": tpu_host_spec,
    "cloud-tpu": cloud_tpu_host_spec,
    "gpu": gpu_host_spec,
}

_DEVICE_SPECS = {
    "tpu": tpu_v1_device,
    "cloud-tpu": cloud_tpu_device,
    "gpu": gpu_device,
}


@dataclass
class MlInstance:
    """A live accelerated workload: the task plus its drivers."""

    name: str
    kind: str  # "training" | "inference"
    task: TrainingTask | InferenceServerTask
    loadgen: OpenLoopGenerator | ClosedLoopGenerator | None = None

    def start(self) -> None:
        """Start the task (and its load generator, for inference)."""
        self.task.start()
        if self.loadgen is not None:
            self.loadgen.start()

    def stop(self) -> None:
        """Stop the load generator and the task."""
        if self.loadgen is not None:
            self.loadgen.stop()
        self.task.stop()

    def performance(self, measurement_end: float) -> float:
        """Steps/s (training) or completed QPS (inference), post-warmup."""
        return self.task.performance(measurement_end)

    def tail_latency(self, q: float = 95.0) -> float | None:
        """Tail latency for inference; None for training workloads."""
        if isinstance(self.task, InferenceServerTask):
            return self.task.tail_latency(q)
        return None


@dataclass(frozen=True)
class MlWorkloadFactory:
    """Builds live instances of one named ML workload."""

    name: str
    kind: str
    spec: TrainingSpec | InferenceSpec

    @property
    def platform(self) -> str:
        """The host platform this workload runs on."""
        return self.spec.platform

    def host_spec(self) -> MachineSpec:
        """The host machine specification for this workload's platform."""
        return _HOST_SPECS[self.spec.platform]()

    def default_cores(self) -> int:
        """Host cores the node scheduler allots the ML task."""
        return self.spec.default_cores

    def standalone_capacity(self, cores: int | None = None) -> float:
        """Peak unloaded QPS of one server instance (inference only).

        The fleet admission layer sizes per-tenant arrival rates against
        this analytic capacity.
        """
        if self.kind != "inference":
            raise WorkloadError(
                f"{self.name!r} is a {self.kind} workload; standalone "
                "capacity is defined for inference servers only"
            )
        spec = self.spec
        assert isinstance(spec, InferenceSpec)
        device_spec = _DEVICE_SPECS[spec.platform]()
        return spec.standalone_capacity(
            device_spec, cores if cores is not None else self.default_cores()
        )

    def build(
        self,
        machine: Machine,
        placement: Placement,
        warmup_until: float = 0.0,
        seed: int = 0,
        tracer: TimelineTracer | None = None,
        load_fraction: float | None = None,
    ) -> MlInstance:
        """Assemble a live instance on ``machine`` at ``placement``."""
        if self.kind == "training":
            spec = self.spec
            assert isinstance(spec, TrainingSpec)
            barrier = None
            if not spec.overlap and spec.barrier_shards > 1:
                barrier = LockStepBarrier(
                    shards=spec.barrier_shards,
                    nominal_latency=spec.host_time,
                    latency_cv=spec.barrier_cv,
                    rng=np.random.default_rng(seed + 101),
                )
            task = TrainingTask(
                task_id=self.name,
                machine=machine,
                placement=placement,
                spec=spec,
                warmup_until=warmup_until,
                barrier=barrier,
            )
            return MlInstance(name=self.name, kind=self.kind, task=task)

        spec = self.spec
        assert isinstance(spec, InferenceSpec)
        device_spec = _DEVICE_SPECS[spec.platform]()
        device = AcceleratorDevice(device_spec, machine.sim)
        pcie_in = PcieLink(machine.spec.pcie, machine.sim, name="pcie-in")
        pcie_out = PcieLink(machine.spec.pcie, machine.sim, name="pcie-out")
        task = InferenceServerTask(
            task_id=self.name,
            machine=machine,
            placement=placement,
            spec=spec,
            device=device,
            pcie_in=pcie_in,
            pcie_out=pcie_out,
            warmup_until=warmup_until,
            tracer=tracer,
        )
        loadgen: OpenLoopGenerator | ClosedLoopGenerator | None
        if load_fraction is None:
            # The paper's default: pipelined, fixed-concurrency generation.
            loadgen = ClosedLoopGenerator(task, spec.pipeline_concurrency)
        elif load_fraction > 0:
            rate = load_fraction * spec.standalone_capacity(
                device_spec, len(placement.cores)
            )
            loadgen = OpenLoopGenerator(
                sim=machine.sim,
                rate_qps=rate,
                submit=task.submit,
                rng=np.random.default_rng(seed + 7),
            )
        else:
            loadgen = None
        return MlInstance(name=self.name, kind=self.kind, task=task, loadgen=loadgen)


_CATALOG: dict[str, MlWorkloadFactory] = {}


def _register(factory: MlWorkloadFactory) -> None:
    _CATALOG[factory.name] = factory


_register(MlWorkloadFactory(name="rnn1", kind="inference", spec=rnn1_spec()))
_register(MlWorkloadFactory(name="cnn1", kind="training", spec=cnn1_spec()))
_register(MlWorkloadFactory(name="cnn2", kind="training", spec=cnn2_spec()))
_register(MlWorkloadFactory(name="cnn3", kind="training", spec=cnn3_spec()))


def ml_workload_names() -> list[str]:
    """Names accepted by :func:`ml_workload`."""
    return sorted(_CATALOG)


def ml_workload(name: str) -> MlWorkloadFactory:
    """Look up the factory for ``name`` (rnn1/cnn1/cnn2/cnn3)."""
    try:
        return _CATALOG[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown ML workload {name!r}; expected one of {ml_workload_names()}"
        ) from None
