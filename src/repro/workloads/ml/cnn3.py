"""CNN3: GPU image-recognition training behind parameter servers (Table I).

CPU-accelerator interaction: **parameter server** — after each GPU step the
gradients are pushed to PS shards whose optimizer update is a
bandwidth-hungry scan over the variable partition (low CPU intensity, high
host memory intensity). Steps are lock-step across shards, so the slowest
shard bounds throughput; the local shard's latency comes from the contention
simulation and the remaining shards from the barrier model.
"""

from __future__ import annotations

from repro.workloads.ml.distributed import PsUpdateModel
from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.ml.base import TrainingSpec

#: Lock-step fan-out used by the CNN3 experiments.
CNN3_SHARDS = 4

#: The per-shard optimizer update cost backing ``host_time``: 0.27 GB of
#: parameters, 4 bytes moved per parameter byte, 18 GB/s standalone.
CNN3_PS_UPDATE = PsUpdateModel(
    shard_params_gb=0.27, optimizer_traffic_factor=4.0, standalone_bw_gbps=18.0
)


def cnn3_spec() -> TrainingSpec:
    """The CNN3 training specification."""
    return TrainingSpec(
        name="cnn3",
        platform="gpu",
        accel_step_time=60e-3,
        # 0.27 GB * 4 / 18 GB/s = 60 ms standalone PS update.
        host_time=CNN3_PS_UPDATE.standalone_update_time,
        host=HostPhaseProfile(
            bw_gbps=11.0,
            mem_fraction=0.85,
            bw_bound_weight=0.45,
            working_set_mb=4.0,
            llc_intensity=0.8,
            llc_miss_traffic_gain=0.1,
            llc_speed_sensitivity=0.1,
            smt_sensitivity=0.2,
            smt_aggression=0.1,
            prefetch=PrefetchProfile(
                traffic_gain=1.25, off_demand=0.6, off_speed=0.65
            ),
            threads=4,
        ),
        sync_time=4e-3,
        sync=HostPhaseProfile(
            bw_gbps=0.8,
            mem_fraction=0.2,
            bw_bound_weight=0.2,
            threads=1,
        ),
        overlap=False,
        barrier_shards=CNN3_SHARDS,
        barrier_cv=0.10,
        default_cores=4,
    )
