"""CNN1: Cloud TPU image-recognition training, variant one (Table I).

CPU-accelerator interaction: **data in-feed** — the host decodes and reshapes
input examples while the accelerator crunches the previous batch. CNN1 is low
CPU intensity and low host memory intensity, yet it is the workload most
sensitive to bandwidth interference in the paper (Figs 7b, 9a): its in-feed
runs barely ahead of the accelerator, so any stretch of the in-feed phase
lands directly on the training-step critical path.
"""

from __future__ import annotations

from repro.hw.prefetcher import PrefetchProfile
from repro.workloads.base import HostPhaseProfile
from repro.workloads.ml.base import TrainingSpec


def cnn1_spec() -> TrainingSpec:
    """The CNN1 training specification."""
    return TrainingSpec(
        name="cnn1",
        platform="cloud-tpu",
        accel_step_time=100e-3,
        host_time=98e-3,
        host=HostPhaseProfile(
            bw_gbps=3.5,
            mem_fraction=0.88,
            bw_bound_weight=0.45,
            working_set_mb=10.0,
            llc_intensity=1.0,
            llc_miss_traffic_gain=0.35,
            llc_speed_sensitivity=0.22,
            smt_sensitivity=0.25,
            smt_aggression=0.1,
            prefetch=PrefetchProfile(
                traffic_gain=1.20, off_demand=0.75, off_speed=0.82
            ),
            threads=2,
        ),
        sync_time=4e-3,
        sync=HostPhaseProfile(
            bw_gbps=0.8,
            mem_fraction=0.25,
            bw_bound_weight=0.2,
            threads=1,
        ),
        overlap=True,
        default_cores=2,
    )
