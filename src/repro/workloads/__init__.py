"""Workload models.

Two families:

* :mod:`repro.workloads.cpu` — low-priority batch CPU tasks: the synthetic
  Stream and LLC/DRAM/Remote-DRAM aggressors, plus the production-like Stitch
  (image stitching) and CPUML (CPU TensorFlow training) workloads.
* :mod:`repro.workloads.ml` — the high-priority accelerated workloads:
  RNN1 (TPU inference with beam search), CNN1/CNN2 (Cloud TPU training with
  data in-feed), CNN3 (GPU training behind parameter servers).

The shared phase framework lives in :mod:`repro.workloads.base`.
"""

from repro.workloads.base import HostPhaseProfile, Task, phase_speed
from repro.workloads.cpu.base import BatchTask, BatchProfile
from repro.workloads.cpu.catalog import (
    cpu_workload,
    cpu_workload_names,
)
from repro.workloads.ml.catalog import (
    ml_workload,
    ml_workload_names,
)

__all__ = [
    "BatchProfile",
    "BatchTask",
    "HostPhaseProfile",
    "Task",
    "cpu_workload",
    "cpu_workload_names",
    "ml_workload",
    "ml_workload_names",
    "phase_speed",
]
