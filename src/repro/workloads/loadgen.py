"""Request load generation for inference workloads.

The paper generates RNN1 requests "in a parallel and pipelined fashion" at a
rate chosen at the knee of the throughput-latency curve (Section V-A), and
serially for the illustrative Fig 3 trace. Both modes are provided.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.sim import Simulator
    from repro.sim.events import EventHandle
    from repro.workloads.ml.base import InferenceServerTask


class OpenLoopGenerator:
    """Poisson (or deterministic) arrivals at a fixed rate, open loop."""

    def __init__(
        self,
        sim: "Simulator",
        rate_qps: float,
        submit: Callable[[], None],
        rng: np.random.Generator,
        deterministic: bool = False,
    ) -> None:
        if rate_qps <= 0:
            raise ConfigurationError("rate_qps must be positive")
        self.sim = sim
        self.rate_qps = rate_qps
        self.submit = submit
        self._rng = rng
        self._deterministic = deterministic
        self._stopped = True
        self._pending: "EventHandle | None" = None
        self.generated = 0

    def start(self) -> None:
        """Begin generating arrivals from the current simulated time.

        Raises :class:`~repro.errors.ConfigurationError` when called while
        the generator is already running — a second call would schedule a
        second arrival chain and silently double the offered rate. Call
        :meth:`stop` first to restart.
        """
        if not self._stopped:
            raise ConfigurationError(
                "open-loop generator already running; stop() before "
                "restarting"
            )
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating further arrivals.

        Cancels the pending arrival event: a chain merely flagged as stopped
        would resume if the generator were restarted before the stale event
        fired, doubling the offered rate from then on.
        """
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        if self._deterministic:
            gap = 1.0 / self.rate_qps
        else:
            gap = float(self._rng.exponential(1.0 / self.rate_qps))
        self._pending = self.sim.after(gap, self._fire, label="loadgen:arrival")

    def _fire(self) -> None:
        if self._stopped:
            return
        self._pending = None
        self.generated += 1
        self.submit()
        self._schedule_next()


class TraceReplayGenerator:
    """Replays a fixed arrival schedule — trace-driven open-loop load.

    ``arrivals_s`` is a non-decreasing sequence of absolute simulated
    timestamps (typically a :class:`repro.traces.Trace` arrival column);
    ``submit`` receives the *index* of each firing arrival so the caller can
    look up per-request attributes (tenant, job family, demand) in the
    trace's parallel columns.

    Arrivals are chained one event at a time — a million-request trace never
    holds more than one pending arrival event in the simulator heap.
    Arrivals earlier than the simulated clock at :meth:`start` are skipped
    (they are in the past); arrivals beyond the run horizon simply never
    fire.
    """

    def __init__(
        self,
        sim: "Simulator",
        arrivals_s: Sequence[float] | np.ndarray,
        submit: Callable[[int], None],
    ) -> None:
        self.sim = sim
        self.arrivals = np.asarray(arrivals_s, dtype=np.float64)
        if self.arrivals.ndim != 1:
            raise ConfigurationError("arrivals_s must be one-dimensional")
        if self.arrivals.size and np.any(np.diff(self.arrivals) < 0):
            raise ConfigurationError("trace arrivals must be non-decreasing")
        self.submit = submit
        self._stopped = True
        self._pending: "EventHandle | None" = None
        self._next = 0
        self.generated = 0

    @property
    def remaining(self) -> int:
        """Arrivals not yet fired (including any the run may never reach)."""
        return int(self.arrivals.size - self._next)

    def start(self) -> None:
        """Begin replaying from the first arrival at or after ``sim.now``."""
        if not self._stopped:
            raise ConfigurationError(
                "trace replay generator already running; stop() before "
                "restarting"
            )
        self._stopped = False
        self._next = int(np.searchsorted(self.arrivals, self.sim.now, "left"))
        self._schedule_next()

    def stop(self) -> None:
        """Stop replaying (cancelling the pending arrival event)."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self) -> None:
        if self._stopped or self._next >= self.arrivals.size:
            return
        delay = float(self.arrivals[self._next]) - self.sim.now
        self._pending = self.sim.after(
            max(0.0, delay), self._fire, label="loadgen:trace"
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._pending = None
        index = self._next
        self._next = index + 1
        self.generated += 1
        self.submit(index)
        self._schedule_next()

    # -------------------------------------------------------- checkpointing
    def __getstate__(self) -> dict:
        """Pickle everything *except* the arrival schedule.

        The schedule is a pure function of the trace (potentially millions
        of float64s); a checkpoint stores the replay cursor and the restorer
        re-attaches the same trace via :meth:`reattach_arrivals`. The
        pending arrival event pickles with the simulator heap — only the
        array is detached.
        """
        state = self.__dict__.copy()
        state["arrivals"] = None
        return state

    def reattach_arrivals(self, arrivals_s: np.ndarray) -> None:
        """Re-bind the arrival schedule after a checkpoint restore."""
        if self.arrivals is not None:  # pragma: no cover - defensive
            raise ConfigurationError("arrivals already attached")
        self.arrivals = np.asarray(arrivals_s, dtype=np.float64)


class ClosedLoopGenerator:
    """Fixed-concurrency pipelined load (the paper's RNN1 generation mode).

    ``concurrency`` requests are kept outstanding at all times: each
    completion immediately submits a replacement. Throughput therefore tracks
    server capacity and tail latency tracks service time — matching the
    paper's observation of modest QPS loss with modest tail growth under
    interference, rather than open-loop queue collapse.
    """

    def __init__(self, server: "InferenceServerTask", concurrency: int) -> None:
        if concurrency <= 0:
            raise ConfigurationError("concurrency must be positive")
        self.server = server
        self.concurrency = concurrency
        self._stopped = True
        self._attached = False

    def start(self) -> None:
        """Fill the pipeline (attaching the completion listener)."""
        self._stopped = False
        self._attach()
        for _ in range(self.concurrency):
            self.server.submit()

    def stop(self) -> None:
        """Stop replacing completed requests and detach from the server.

        Without the detach, every generator ever pointed at a server would
        keep a listener in ``server.completion_listeners`` forever — and a
        stale generator that was merely re-``start()``-ed elsewhere would
        re-submit on completions it no longer owns.
        """
        self._stopped = True
        self._detach()

    def _attach(self) -> None:
        if not self._attached:
            self.server.completion_listeners.append(self._on_complete)
            self._attached = True

    def _detach(self) -> None:
        if self._attached:
            try:
                self.server.completion_listeners.remove(self._on_complete)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._attached = False

    def _on_complete(self, _start: float, _end: float) -> None:
        if not self._stopped:
            self.server.submit()


class SerialGenerator:
    """Closed-loop, one request at a time (the Fig 3 trace mode)."""

    def __init__(self, server: "InferenceServerTask", total_requests: int) -> None:
        if total_requests <= 0:
            raise ConfigurationError("total_requests must be positive")
        self.server = server
        self.total_requests = total_requests
        self.remaining = total_requests
        self.completed = 0
        self._attached = False

    def start(self) -> None:
        """Issue the first request (attaching the completion listener)."""
        if not self._attached:
            self.server.completion_listeners.append(self._on_complete)
            self._attached = True
        self._issue()

    def stop(self) -> None:
        """Stop issuing further requests and detach from the server."""
        self.remaining = 0
        self._detach()

    def _detach(self) -> None:
        if self._attached:
            try:
                self.server.completion_listeners.remove(self._on_complete)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._attached = False

    def _issue(self) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        self.server.submit()

    def _on_complete(self, _start: float, _end: float) -> None:
        self.completed += 1
        if self.remaining <= 0 and self.completed >= self.total_requests:
            # Exhausted: leave no listener behind on the server.
            self._detach()
            return
        self._issue()
