"""Unit helpers and conventions used across the library.

The simulator keeps every quantity in a single canonical unit to avoid
conversion bugs:

* time        — **seconds** (float)
* bandwidth   — **GB/s** (float, decimal gigabytes)
* data size   — **MB** (float) for working sets, **GB** for transfers
* latency     — **nanoseconds** for memory-access latency *factors* are
                dimensionless multipliers over an unloaded baseline
* rates       — events (queries, steps) per second

These helpers exist so call sites can say ``ms(8)`` instead of ``8e-3`` and
stay self-documenting.
"""

from __future__ import annotations

#: One microsecond, in seconds.
MICROSECOND = 1e-6
#: One millisecond, in seconds.
MILLISECOND = 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def seconds(value: float) -> float:
    """Identity helper, for call-site symmetry with :func:`ms`/:func:`us`."""
    return float(value)


def to_ms(value_seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return value_seconds / MILLISECOND


def to_us(value_seconds: float) -> float:
    """Convert seconds to microseconds."""
    return value_seconds / MICROSECOND


def gib_to_gb(value_gib: float) -> float:
    """Convert binary gibibytes to decimal gigabytes."""
    return value_gib * (1024 ** 3) / 1e9


def mb(value: float) -> float:
    """Identity helper: working-set sizes are expressed in MB."""
    return float(value)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"clamp: empty interval [{lo}, {hi}]")
    return max(lo, min(hi, value))
