"""Sensor suites: the measurement layer of the control plane.

Real QoS controllers live or die on imperfect signals — counters are
sampled on a cadence, reads get lost, and values carry noise. The
:class:`SensorSuite` protocol makes the sensing path a first-class,
replaceable layer: :class:`PerfectSensors` reproduces the historical direct
``measure_node`` read bit-for-bit, and the decorator classes compose
degradations on top of any inner suite:

* :class:`StaleSensors` — sample-and-hold: the underlying counters are only
  re-read every ``period`` simulated seconds; between refreshes the
  governor keeps deciding on the held (stale) sample.
* :class:`NoisySensors` — multiplicative Gaussian noise on every counter
  (latency noise perturbs the loaded-latency *excess* over 1.0, keeping the
  unloaded floor meaningful).
* :class:`DropoutSensors` — each fresh sample is lost with probability
  ``p``; the previous good sample is delivered instead.

All randomness is drawn from :class:`numpy.random.Generator` streams seeded
from the run seed, so degraded runs remain deterministic and process-pool
safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from repro.core.measurements import KelpMeasurements, measure_node
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.node import Node

#: Seed-stream tags (keep distinct from other subsystem tags).
_STREAM_NOISE = 0x53_4E
_STREAM_DROPOUT = 0x53_44


class SensorSuite(Protocol):
    """Anything that yields one :class:`KelpMeasurements` per control tick."""

    def sample(self) -> KelpMeasurements:
        """Produce the sample the governor will decide on."""
        ...


class PerfectSensors:
    """Zero-latency, zero-noise sensing — the historical behaviour.

    One windowed :func:`~repro.core.measurements.measure_node` read per
    call, through the node's named perf reader.
    """

    def __init__(self, node: "Node", reader: str = "kelp") -> None:
        self._node = node
        self._reader = reader

    def sample(self) -> KelpMeasurements:
        """One fresh windowed perf read."""
        return measure_node(self._node, reader=self._reader)


class _SimClock:
    """Picklable ``now`` callable bound to a node's simulator clock."""

    __slots__ = ("_node",)

    def __init__(self, node: "Node") -> None:
        self._node = node

    def __call__(self) -> float:
        return self._node.sim.now


class StaleSensors:
    """Sample-and-hold: refresh the inner suite at most every ``period`` s.

    Between refreshes the held sample is returned unchanged and the inner
    suite is *not* consulted, so the underlying perf window naturally grows
    to cover the whole staleness period (as a slow telemetry pipeline's
    would).
    """

    def __init__(
        self,
        inner: SensorSuite,
        period: float,
        now_fn: Callable[[], float],
    ) -> None:
        if period <= 0:
            raise ConfigurationError("staleness period must be positive")
        self._inner = inner
        self._period = period
        self._now = now_fn
        self._held: KelpMeasurements | None = None
        self._held_at = 0.0

    def sample(self) -> KelpMeasurements:
        """The held sample, refreshed when the hold period has elapsed."""
        now = self._now()
        if (
            self._held is None
            or now - self._held_at >= self._period - 1e-12
        ):
            self._held = self._inner.sample()
            self._held_at = now
        return self._held


class NoisySensors:
    """Multiplicative Gaussian noise on every counter of the sample."""

    def __init__(
        self, inner: SensorSuite, sigma: float, rng: np.random.Generator
    ) -> None:
        if sigma < 0:
            raise ConfigurationError("noise sigma must be non-negative")
        self._inner = inner
        self._sigma = sigma
        self._rng = rng

    def _factor(self) -> float:
        return max(0.0, 1.0 + self._sigma * float(self._rng.standard_normal()))

    def sample(self) -> KelpMeasurements:
        """The inner sample with per-counter noise applied."""
        m = self._inner.sample()
        if self._sigma == 0.0:
            return m
        return KelpMeasurements(
            socket_bw=m.socket_bw * self._factor(),
            socket_latency=max(
                0.0, 1.0 + (m.socket_latency - 1.0) * self._factor()
            ),
            saturation=min(1.0, max(0.0, m.saturation * self._factor())),
            hipri_bw=m.hipri_bw * self._factor(),
            elapsed=m.elapsed,
        )


class DropoutSensors:
    """Lose each fresh sample with probability ``p`` (deliver the last good).

    The very first sample is never dropped — a controller that has seen
    nothing yet must see *something* — matching how a telemetry pipeline's
    first publish races no previous value.
    """

    def __init__(
        self, inner: SensorSuite, probability: float, rng: np.random.Generator
    ) -> None:
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError("dropout probability must be in [0, 1)")
        self._inner = inner
        self._p = probability
        self._rng = rng
        self._held: KelpMeasurements | None = None
        #: Samples lost so far (observability).
        self.dropped = 0

    def sample(self) -> KelpMeasurements:
        """A fresh sample, or the held one when the fresh read is lost."""
        fresh = self._inner.sample()
        if self._held is not None and float(self._rng.random()) < self._p:
            self.dropped += 1
            return self._held
        self._held = fresh
        return fresh


@dataclass(frozen=True)
class SensorConfig:
    """Declarative telemetry-degradation knobs (all off by default).

    Carried on :class:`~repro.experiments.common.MixConfig` and materialized
    per node by :func:`build_sensor_suite`; the all-zero default produces a
    bare :class:`PerfectSensors` (the golden-equivalence path).
    """

    #: Sample-and-hold period, simulated seconds (0 = every tick fresh).
    staleness_period: float = 0.0
    #: Multiplicative Gaussian noise sigma on each counter (0 = exact).
    noise_sigma: float = 0.0
    #: Probability each fresh sample is lost (0 = lossless).
    dropout_prob: float = 0.0
    #: Base seed for the noise/dropout random streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.staleness_period < 0:
            raise ConfigurationError("staleness_period must be >= 0")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be >= 0")
        if not 0.0 <= self.dropout_prob < 1.0:
            raise ConfigurationError("dropout_prob must be in [0, 1)")

    @property
    def degraded(self) -> bool:
        """True when any degradation is enabled."""
        return (
            self.staleness_period > 0
            or self.noise_sigma > 0
            or self.dropout_prob > 0
        )


def build_sensor_suite(
    node: "Node", reader: str, config: SensorConfig | None = None
) -> SensorSuite:
    """Assemble the sensor stack a policy's control loop reads through.

    Decorator order (inside out): perfect read → noise (baked in at read
    time) → staleness (held samples keep their noise) → dropout (losing the
    freshest publish). ``config=None`` or an all-zero config returns plain
    :class:`PerfectSensors` — bit-identical to the pre-refactor path.
    """
    suite: SensorSuite = PerfectSensors(node, reader=reader)
    if config is None or not config.degraded:
        return suite
    if config.noise_sigma > 0:
        suite = NoisySensors(
            suite,
            config.noise_sigma,
            np.random.default_rng(
                np.random.SeedSequence((config.seed, _STREAM_NOISE))
            ),
        )
    if config.staleness_period > 0:
        suite = StaleSensors(
            suite, config.staleness_period, _SimClock(node)
        )
    if config.dropout_prob > 0:
        suite = DropoutSensors(
            suite,
            config.dropout_prob,
            np.random.default_rng(
                np.random.SeedSequence((config.seed, _STREAM_DROPOUT))
            ),
        )
    return suite
