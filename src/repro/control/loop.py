"""The shared control loop: sample → decide → actuate → record.

:class:`ControlLoop` owns the tick skeleton every managed policy used to
re-implement: draw one sample from the :class:`~repro.control.sensors`
suite, ask the :class:`~repro.control.governors.Governor` for a decision,
enforce the decided knob values through the
:class:`~repro.control.actuators.HostControlPlane`, and append one
:class:`~repro.control.records.ControlTickRecord` to :attr:`history`.

Enforcement order is the historical one (low-task cpusets → prefetcher
MSRs → backfill cpusets → MBA cap), so a fault-free run replays the exact
write sequence of the pre-refactor policies. A ``None`` decision (a
dormant governor) still consumes the sample — the perf window keeps its
historical cadence — but performs no writes and records nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.control.actuators import HostControlPlane
from repro.control.governors import Governor
from repro.control.records import ControlTickRecord
from repro.control.sensors import SensorSuite

if TYPE_CHECKING:
    from repro.node import Node


class ControlLoop:
    """One node's sense→decide→enforce tick, with unified history."""

    def __init__(
        self,
        node: "Node",
        governor: Governor,
        sensors: SensorSuite,
        plane: HostControlPlane,
    ) -> None:
        self.node = node
        self.governor = governor
        self.sensors = sensors
        self.plane = plane
        #: One :class:`ControlTickRecord` per engaged tick, in time order.
        self.history: list[ControlTickRecord] = []
        #: Engaged ticks whose enforcement produced zero actuation writes
        #: (every knob already held the decided value): the machine was
        #: never notified, so no contention re-solve ran at all.
        self.noop_ticks = 0
        #: Telemetry-blackout support: while ``now < _hold_until`` the loop
        #: reuses the last pre-hold sample instead of reading the sensors —
        #: the governor keeps deciding on a frozen, stale view of the node.
        self._held_sample = None
        self._hold_until = 0.0

    def hold_sensors(self, until: float) -> None:
        """Freeze the sensor view until ``until`` (telemetry blackout).

        Ticks before ``until`` reuse the most recent real sample; the perf
        window is not read, so after the hold the first fresh sample spans
        the whole blackout. No-op until at least one real sample exists.
        """
        self._hold_until = max(self._hold_until, until)

    def tick(self) -> ControlTickRecord | None:
        """Run one control interval; ``None`` when the governor is dormant."""
        node = self.node
        plane = self.plane
        machine = node.machine
        machine.begin_hold()
        try:
            plane.begin_tick()
        finally:
            machine.end_hold()
        if node.sim.now < self._hold_until and self._held_sample is not None:
            m = self._held_sample
        else:
            m = self.sensors.sample()
            self._held_sample = m
        decision = self.governor.decide(m)
        if decision is None:
            return None

        # All enforcement writes land at one simulated instant; the hold
        # coalesces their notify_change storm into (at most) one re-solve.
        # A fully-deduplicated tick — every knob already at its decided
        # value — performs zero writes and therefore never re-solves.
        machine.begin_hold()
        try:
            if decision.lo_task_mask is not None:
                for task in node.lo_tasks:
                    plane.set_task_cpus(task, decision.lo_task_mask)
            if decision.prefetcher_count is not None:
                plane.set_lo_prefetchers(decision.prefetcher_count)
            if decision.backfill_mask is not None:
                for task in node.backfill_tasks:
                    plane.set_task_cpus(task, decision.backfill_mask)
            if decision.mb_percent is not None:
                clos, percent = decision.mb_percent
                plane.set_mb_percent(clos, percent)
        finally:
            machine.end_hold()
        if plane.writes_this_tick == 0:
            self.noop_ticks += 1

        record = ControlTickRecord(
            time=node.sim.now,
            lo_cores=decision.lo_cores,
            lo_prefetchers=decision.lo_prefetchers,
            backfill_cores=(
                decision.backfill_cores if node.backfill_tasks else 0
            ),
            action_hi=decision.action_hi,
            action_lo=decision.action_lo,
            measurements=m,
            extra=decision.extra,
            writes=plane.writes_this_tick,
        )
        self.history.append(record)
        return record
