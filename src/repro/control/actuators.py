"""The actuation layer: every knob write goes through one journaled facade.

The :class:`HostControlPlane` is the only sanctioned way for a controller to
change host state. It routes each write through the node's
:mod:`repro.hostif` controllers (cpuset masks, prefetcher MSRs,
CAT/resctrl, MBA caps) — killing the historical ``Node`` convenience-method
bypasses — and adds the two things the bare surfaces lack:

* **Dedup + journal**: a write whose requested value is already in effect
  is dropped before it touches the machine, so a quiescent controller
  (NOP/NOP tick, unchanged plans) performs *zero* physical writes; every
  write that does happen lands in :attr:`journal` as an
  :class:`~repro.control.records.ActuationRecord`.
* **Fault injection**: an :class:`ActuationFaultConfig` makes runtime
  writes fail (with bounded retry) or defer to the next tick, modelling
  lost MSR/cpuset writes on a busy host. Setup-time writes (CAT
  partitioning, group creation) are journaled but never faulted.
* **Fault windows**: timed ``(start, stop)`` intervals during which every
  runtime write fails deterministically — a *stuck actuator*. Windows are
  checked before the stochastic fault path and consume no RNG draws, so
  the flat-rate fault stream (and any run without windows) is bit-identical
  whether or not windows exist in the config. The live
  :attr:`HostControlPlane.fault_windows` list is mutable so a fleet-level
  incident schedule can arm and disarm a stuck actuator mid-run.

All randomness comes from a seeded :class:`numpy.random.Generator`, so
fault runs stay deterministic across process pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.control.records import ActuationRecord
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.node import Node
    from repro.hostif.cpuset import PlaceableTask

#: Seed-stream tag for the fault draws.
_STREAM_FAULTS = 0x41_46


@dataclass(frozen=True)
class ActuationFaultConfig:
    """Declarative actuation-fault knobs (all off by default)."""

    #: Probability each physical write attempt fails (retried up to
    #: :attr:`max_retries` times; a fully failed write leaves the knob as
    #: it was and is journaled ``failed``).
    fail_prob: float = 0.0
    #: Probability a first-attempt write is delayed to the next tick
    #: (journaled ``deferred``; it lands before the next decision acts).
    defer_prob: float = 0.0
    #: Retries after the first failed attempt.
    max_retries: int = 2
    #: Base seed for the fault random stream.
    seed: int = 0
    #: ``(start, stop)`` sim-time intervals during which every runtime
    #: write fails deterministically (a stuck actuator). Checked before
    #: the stochastic path; never consumes RNG draws.
    windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_prob < 1.0:
            raise ConfigurationError("fail_prob must be in [0, 1)")
        if not 0.0 <= self.defer_prob < 1.0:
            raise ConfigurationError("defer_prob must be in [0, 1)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        for window in self.windows:
            start, stop = window
            if not start < stop:
                raise ConfigurationError(
                    f"fault window {window!r} must have start < stop"
                )

    @property
    def active(self) -> bool:
        """True when any fault injection is enabled."""
        return self.fail_prob > 0 or self.defer_prob > 0 or bool(self.windows)

    @property
    def stochastic(self) -> bool:
        """True when the per-write probabilistic faults are enabled."""
        return self.fail_prob > 0 or self.defer_prob > 0


class HostControlPlane:
    """Journaled, dedup'd, fault-injectable actuator facade over one node."""

    def __init__(
        self, node: "Node", faults: ActuationFaultConfig | None = None
    ) -> None:
        self._node = node
        # Only the *stochastic* faults need the RNG path; a windows-only
        # config must not create (or ever draw from) a fault stream, so a
        # run that adds windows leaves the flat-rate stream untouched.
        self.faults = (
            faults if faults is not None and faults.stochastic else None
        )
        self._rng = (
            np.random.default_rng(
                np.random.SeedSequence((faults.seed, _STREAM_FAULTS))
            )
            if self.faults is not None
            else None
        )
        #: Live stuck-actuator windows. Seeded from the config; mutable so
        #: incident schedules can arm/disarm windows mid-run.
        self.fault_windows: list[tuple[float, float]] = (
            list(faults.windows) if faults is not None else []
        )
        #: Every physical write (or failed/deferred attempt), in order.
        self.journal: list[ActuationRecord] = []
        #: Writes deferred by fault injection, applied at the next tick.
        self._pending: list[tuple[str, str, str, Callable[[], None]]] = []
        self._tick_mark = 0

    # ------------------------------------------------------------ tick API
    def begin_tick(self) -> None:
        """Mark a tick boundary and land any deferred writes from the last.

        Deferred writes apply *before* the new decision acts, so a delayed
        actuation can still be overridden by the tick that follows it —
        exactly the race a slow MSR/cgroup write loses on a real host.
        """
        if self._pending:
            pending, self._pending = self._pending, []
            for kind, target, value, op in pending:
                op()
                self._journal(kind, target, value, "applied", attempts=1)
        self._tick_mark = len(self.journal)

    @property
    def writes_this_tick(self) -> int:
        """Journal entries since the last :meth:`begin_tick`."""
        return len(self.journal) - self._tick_mark

    # ------------------------------------------------------------- cpusets
    def set_task_cpus(
        self, task: "PlaceableTask", cores: frozenset[int] | set[int]
    ) -> int:
        """Pin ``task`` to ``cores`` (empty = park); no-op when in effect."""
        cores = frozenset(cores)
        if not cores:
            if task.parked:
                return 0
            return self._write(
                "cpuset",
                task.task_id,
                "parked",
                partial(self._node.cpuset.set_cpus, task, cores),
            )
        if not task.parked and task.placement.cores == cores:
            return 0
        return self._write(
            "cpuset",
            task.task_id,
            _render_mask(cores),
            partial(self._node.cpuset.set_cpus, task, cores),
        )

    # --------------------------------------------------------- prefetchers
    def set_lo_prefetchers(self, count: int) -> int:
        """Enable prefetchers on exactly ``count`` low-subdomain cores.

        Cores are enabled lowest-id first (the fixed order the runtime
        writes MSR ``0x1A4`` in); only cores whose current MSR state
        differs are written.
        """
        cores = self._node.lo_subdomain_cores()
        count = max(0, min(count, len(cores)))
        writes = 0
        states = self._node.msr.prefetcher_states(cores)
        for index, core in enumerate(cores):
            enabled = index < count
            if states[index] == enabled:
                continue
            writes += self._write(
                "msr",
                f"core{core}",
                "on" if enabled else "off",
                partial(self._node.msr.set_prefetchers, core, enabled),
            )
        return writes

    # ----------------------------------------------------------- resctrl
    def set_mb_percent(self, clos: int, percent: int) -> int:
        """Set the MBA throttle of ``clos``; no-op when already in effect."""
        if self._node.resctrl.mb_percent(clos) == percent:
            return 0
        return self._write(
            "mba",
            f"clos{clos}",
            f"{percent}%",
            partial(self._node.resctrl.set_mb_percent, clos, percent),
        )

    def create_clos_group(self, clos: int) -> int:
        """Define a class of service (setup-time; journaled, never faulted)."""
        return self._write(
            "resctrl",
            f"clos{clos}",
            "create",
            partial(self._node.resctrl.create_group, clos),
            faultable=False,
        )

    def dedicate_llc_ways(self, clos: int, ways: int) -> int:
        """Give ``clos`` an exclusive CAT partition (setup-time write)."""
        return self._write(
            "resctrl",
            f"clos{clos}",
            f"ways={ways}",
            partial(self._node.resctrl.dedicate_ways, clos, ways),
            faultable=False,
        )

    def setup_mb_percent(self, clos: int, percent: int) -> int:
        """Initialize a CLOS's MBA throttle (setup-time; never faulted)."""
        return self._write(
            "mba",
            f"clos{clos}",
            f"{percent}%",
            partial(self._node.resctrl.set_mb_percent, clos, percent),
            faultable=False,
        )

    # ----------------------------------------------------------- internals
    def _write(
        self,
        kind: str,
        target: str,
        value: str,
        op: Callable[[], None],
        faultable: bool = True,
    ) -> int:
        """Perform one physical write, with fault injection when enabled.

        Returns the number of journal entries added (always 1: applied,
        deferred or failed).
        """
        if faultable and self.fault_windows and self._in_fault_window():
            # Stuck actuator: deterministic failure, no RNG draw — the
            # stochastic stream advances exactly as it would without the
            # window, keeping flat-rate runs bit-identical.
            self._journal(kind, target, value, "failed")
            return 1
        faults = self.faults
        if faults is None or not faultable:
            op()
            self._journal(kind, target, value, "applied")
            return 1
        assert self._rng is not None
        attempts = 0
        for attempt in range(faults.max_retries + 1):
            attempts += 1
            if float(self._rng.random()) < faults.fail_prob:
                continue  # this attempt was lost; bounded retry
            if (
                attempt == 0
                and faults.defer_prob > 0
                and float(self._rng.random()) < faults.defer_prob
            ):
                self._pending.append((kind, target, value, op))
                self._journal(kind, target, value, "deferred", attempts)
                return 1
            op()
            self._journal(kind, target, value, "applied", attempts)
            return 1
        self._journal(kind, target, value, "failed", attempts)
        return 1

    def _in_fault_window(self) -> bool:
        now = self._node.sim.now
        return any(start <= now < stop for start, stop in self.fault_windows)

    def _journal(
        self, kind: str, target: str, value: str, status: str, attempts: int = 1
    ) -> None:
        self.journal.append(
            ActuationRecord(
                time=self._node.sim.now,
                kind=kind,
                target=target,
                value=value,
                status=status,
                attempts=attempts,
            )
        )


def _render_mask(cores: frozenset[int]) -> str:
    """Compact ``4-9,12`` rendering of a core mask for the journal."""
    ids = sorted(cores)
    spans: list[str] = []
    start = prev = ids[0]
    for core in ids[1:]:
        if core == prev + 1:
            prev = core
            continue
        spans.append(str(start) if start == prev else f"{start}-{prev}")
        start = prev = core
    spans.append(str(start) if start == prev else f"{start}-{prev}")
    return ",".join(spans)
