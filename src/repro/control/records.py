"""Unified control-plane records: controller ticks and actuation writes.

Historically every policy kept its own history shape — ``KelpTickRecord``
for the Algorithm-1 runtime, ``ParameterSample`` for CT/MBA — and every
consumer (fig 11/12, the obs JSONL export, the fleet member) had to know
which one it was holding. :class:`ControlTickRecord` replaces both: one
frozen row per control interval with the measurements the governor saw, the
actions it took, the knob values it settled on, and how many physical
writes the actuation pass actually performed (0 on a NOP/NOP tick whose
plans are unchanged — the journal dedup guarantee).

:class:`ActuationRecord` is one entry of the :class:`HostControlPlane`
actuation journal: a physical knob write (or a failed/deferred attempt)
with its target and outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import Action
from repro.core.measurements import KelpMeasurements


@dataclass(frozen=True)
class ControlTickRecord:
    """What a governor saw, decided and enforced on one control tick.

    This is the single tick-record type of the control plane: policies built
    on :class:`~repro.control.loop.ControlLoop` expose a stream of these via
    ``tick_history()``; the knob fields double as the Figs 11-12 parameter
    samples (``parameter_history`` returns the same list).
    """

    time: float
    #: Cores granted to low-priority tasks (CT: the shrinking CPU mask).
    lo_cores: int
    #: Low-subdomain cores with prefetching enabled (MBA reuses this slot
    #: for its MB% throttle, mirrored in :attr:`extra`).
    lo_prefetchers: int
    #: Cores granted to backfilled tasks (0 when none are resident).
    backfill_cores: int
    #: High-priority-subdomain (backfill) decision.
    action_hi: Action = Action.NOP
    #: Low-priority-subdomain decision.
    action_lo: Action = Action.NOP
    #: The (possibly degraded) sensor sample the decision was based on.
    measurements: KelpMeasurements | None = None
    #: Extra policy-specific knob values, e.g. ``(("mb_percent", 40.0),)``.
    extra: tuple[tuple[str, float], ...] = ()
    #: Actuation-journal entries this tick (applied + deferred + failed).
    writes: int = 0

    def as_dict(self) -> dict[str, float | str]:
        """A flat JSON-clean row (the ``tick`` record of the JSONL export)."""
        row: dict[str, float | str] = {"time": self.time}
        m = self.measurements
        if m is not None:
            row.update(
                socket_bw_gbps=m.socket_bw,
                socket_latency=m.socket_latency,
                saturation=m.saturation,
                hipri_bw_gbps=m.hipri_bw,
                window_s=m.elapsed,
            )
        row.update(
            action_hi=self.action_hi.value,
            action_lo=self.action_lo.value,
            backfill_cores=self.backfill_cores,
            lo_cores=self.lo_cores,
            lo_prefetchers=self.lo_prefetchers,
            writes=self.writes,
        )
        for name, value in self.extra:
            row[name] = value
        return row


@dataclass(frozen=True)
class ActuationRecord:
    """One journaled knob write through the :class:`HostControlPlane`.

    No-op re-writes (the requested value already in effect) never reach the
    journal, so a quiescent controller produces zero entries per tick.
    """

    time: float
    #: Knob family: ``cpuset`` | ``msr`` | ``resctrl`` | ``mba``.
    kind: str
    #: What was written: a task id, ``core<N>`` or ``clos<N>``.
    target: str
    #: Rendered requested value (mask, on/off, percentage, ...).
    value: str
    #: ``applied`` | ``deferred`` (landed at the next tick) | ``failed``.
    status: str
    #: Physical write attempts consumed (1 + retries).
    attempts: int = 1

    def as_dict(self) -> dict[str, float | str | int]:
        """A flat JSON-clean row (the ``actuation`` record of the export)."""
        return {
            "time": self.time,
            "knob": self.kind,
            "target": self.target,
            "value": self.value,
            "status": self.status,
            "attempts": self.attempts,
        }
