"""The layered node control plane: sensors → governors → actuators.

Every managed policy used to re-implement its own sense→decide→enforce tick
against :class:`~repro.node.Node` internals. This package factors
that skeleton into three replaceable layers driven by one shared loop:

* :mod:`repro.control.sensors` — a :class:`SensorSuite` wraps the perf-read
  path behind an interface. :class:`PerfectSensors` is bit-identical to the
  historical direct ``measure_node`` call; composable decorators add
  telemetry staleness (sample-and-hold), Gaussian counter noise, and sample
  dropout for degraded-telemetry studies.
* :mod:`repro.control.governors` — a :class:`Governor` turns one measurement
  sample into a :class:`GovernorDecision` (actions + desired knob values).
  :class:`KelpGovernor` is Algorithm 1/2 extracted from the old
  ``KelpRuntime.tick``; :class:`CoreThrottleGovernor` and
  :class:`MbaGovernor` are the CT and MBA feedback loops.
* :mod:`repro.control.actuators` — the :class:`HostControlPlane` facade
  routes **every** knob write (cpuset masks, prefetcher MSRs, CAT/resctrl,
  MBA caps) through the :mod:`repro.hostif` controllers, dedupes no-op
  re-writes, records each physical write in an actuation journal, and can
  inject bounded-retry write faults (failed/deferred actuations).
* :mod:`repro.control.loop` — :class:`ControlLoop` owns the tick: sample,
  decide, actuate, record. Its history is the single
  :class:`~repro.control.records.ControlTickRecord` stream consumed by the
  figures, the obs JSONL export, and the fleet member.

Layering: this package may import :mod:`repro.core` domain types
(measurements, actions, watermarks) and the host surfaces, but never
:mod:`repro.experiments` or :mod:`repro.fleet` (enforced by
``scripts/check_layering.py``).

Equivalence guarantee: under :class:`PerfectSensors` with faults disabled,
the control plane reproduces the pre-refactor experiment summaries
bit-for-bit (``tests/integration/test_golden_equivalence.py``).
"""

from repro.control.actuators import ActuationFaultConfig, HostControlPlane
from repro.control.governors import (
    CoreThrottleGovernor,
    Governor,
    GovernorDecision,
    KelpGovernor,
    MbaGovernor,
)
from repro.control.loop import ControlLoop
from repro.control.records import ActuationRecord, ControlTickRecord
from repro.control.sensors import (
    DropoutSensors,
    NoisySensors,
    PerfectSensors,
    SensorConfig,
    SensorSuite,
    StaleSensors,
    build_sensor_suite,
)

__all__ = [
    "ActuationFaultConfig",
    "ActuationRecord",
    "ControlLoop",
    "ControlTickRecord",
    "CoreThrottleGovernor",
    "DropoutSensors",
    "Governor",
    "GovernorDecision",
    "HostControlPlane",
    "KelpGovernor",
    "MbaGovernor",
    "NoisySensors",
    "PerfectSensors",
    "SensorConfig",
    "SensorSuite",
    "StaleSensors",
    "build_sensor_suite",
]
