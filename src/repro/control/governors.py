"""Governors: the decision layer of the control plane.

A :class:`Governor` turns one sensor sample into a
:class:`GovernorDecision` — the actions it chose plus the concrete knob
values the :class:`~repro.control.loop.ControlLoop` should enforce. The
three governors here are the decision kernels extracted verbatim from the
historical policy ``tick`` methods, so the refactored loop reproduces the
old trajectories bit-for-bit:

* :class:`KelpGovernor` — Algorithm 1 (the THROTTLE/BOOST/NOP comparisons
  per subdomain) plus the Algorithm 2 plan updates, lifted from the old
  ``KelpRuntime.tick``. The ``manage_*`` flags keep their historical
  quirks: ``manage_lo_cores=False`` reverts a core *move* wholesale (the
  prefetcher move rides along only when cores did not change) and
  ``manage_prefetchers=False`` freezes the prefetcher count while letting
  cores move.
* :class:`CoreThrottleGovernor` — the CT one-core-at-a-time feedback loop.
  It stays dormant (``decide`` returns ``None``) until :meth:`engage` is
  called with the initial grant, and emits a cpuset mask only on a
  non-NOP tick, exactly as the old policy wrote it.
* :class:`MbaGovernor` — the MB%-step feedback loop of the Section VI-D
  MBA configuration; the throttle value is surfaced both as the
  ``lo_prefetchers`` knob slot (the historical Fig 11/12 encoding) and as
  an ``("mb_percent", …)`` extra.

Governors never touch the machine: every physical write goes through the
:class:`~repro.control.actuators.HostControlPlane` in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.core.actions import (
    Action,
    HiPriorityPlan,
    LoPriorityPlan,
    config_hi_priority,
    config_lo_priority,
)
from repro.core.measurements import KelpMeasurements
from repro.core.watermarks import QosProfile

if TYPE_CHECKING:
    from repro.node import Node


@dataclass(frozen=True)
class GovernorDecision:
    """One tick's decision: actions taken plus knob values to enforce.

    ``None`` in a knob field means *leave that knob alone this tick* (the
    loop performs no write for it); a non-``None`` value is the desired
    state, which the actuator facade dedupes against what is already in
    effect.
    """

    #: High-priority-subdomain (backfill) decision.
    action_hi: Action
    #: Low-priority-subdomain decision.
    action_lo: Action
    #: Cores granted to low-priority tasks (reported knob value).
    lo_cores: int
    #: Prefetcher-enabled low cores (MBA reuses the slot for its MB%).
    lo_prefetchers: int
    #: Cores granted to backfilled tasks (plan value; the loop records 0
    #: when no backfill tasks are resident).
    backfill_cores: int
    #: Desired cpuset for every low-priority task (``None`` = no write).
    lo_task_mask: frozenset[int] | None = None
    #: Desired cpuset for every backfilled task (``None`` = no write).
    backfill_mask: frozenset[int] | None = None
    #: Desired number of prefetcher-enabled low cores (``None`` = no write).
    prefetcher_count: int | None = None
    #: Desired ``(clos, percent)`` MBA throttle (``None`` = no write).
    mb_percent: tuple[int, int] | None = None
    #: Policy-specific knob values copied onto the tick record.
    extra: tuple[tuple[str, float], ...] = ()


class Governor(Protocol):
    """Anything that can turn a measurement sample into a decision."""

    def decide(self, m: KelpMeasurements) -> GovernorDecision | None:
        """Decide on one sample; ``None`` = not engaged, skip this tick."""
        ...


class KelpGovernor:
    """Algorithm 1/2: the Kelp decision kernel for one node.

    Holds the two resource plans (:class:`HiPriorityPlan` for backfill,
    :class:`LoPriorityPlan` for the low subdomain) and updates them via the
    Algorithm 2 procedures each tick. ``profile`` is a plain mutable
    attribute — swapping it mid-run retargets the controller, as the
    backpressure experiments do.
    """

    def __init__(
        self,
        node: "Node",
        profile: QosProfile,
        manage_lo_cores: bool = True,
        manage_backfill: bool = True,
        manage_prefetchers: bool = True,
    ) -> None:
        self._node = node
        self.profile = profile
        self.manage_lo_cores = manage_lo_cores
        self.manage_backfill = manage_backfill
        self.manage_prefetchers = manage_prefetchers
        lo_cores = len(node.lo_subdomain_cores())
        self._hi_plan = HiPriorityPlan(
            core_num=profile.max_backfill_cores,
            min_core_num=profile.min_backfill_cores,
            max_core_num=profile.max_backfill_cores,
        )
        self._lo_plan = LoPriorityPlan(
            core_num=lo_cores,
            prefetcher_num=lo_cores,
            min_core_num=profile.min_lo_cores,
            max_core_num=lo_cores,
        )

    # ------------------------------------------------------------ access
    @property
    def hi_plan(self) -> HiPriorityPlan:
        """Current backfill resource plan."""
        return self._hi_plan

    @property
    def lo_plan(self) -> LoPriorityPlan:
        """Current low-priority resource plan."""
        return self._lo_plan

    # ------------------------------------------------------------ decide
    def decide(self, m: KelpMeasurements) -> GovernorDecision:
        """One pass of Algorithm 1: decide actions, update plans."""
        profile = self.profile

        # Lines 4-9: high-priority-subdomain (backfill) decision.
        if profile.hipri_bw.above(m.hipri_bw) or profile.socket_latency.above(
            m.socket_latency
        ):
            action_hi = Action.THROTTLE
        elif profile.hipri_bw.below(m.hipri_bw) and profile.socket_latency.below(
            m.socket_latency
        ):
            action_hi = Action.BOOST
        else:
            action_hi = Action.NOP

        # Lines 10-15: low-priority-subdomain decision.
        if (
            profile.socket_bw.above(m.socket_bw)
            or profile.socket_latency.above(m.socket_latency)
            or profile.saturation.above(m.saturation)
        ):
            action_lo = Action.THROTTLE
        elif (
            profile.socket_bw.below(m.socket_bw)
            and profile.socket_latency.below(m.socket_latency)
            and profile.saturation.below(m.saturation)
        ):
            action_lo = Action.BOOST
        else:
            action_lo = Action.NOP

        # Lines 16-18: Algorithm 2 plan updates, gated by the manage flags.
        if self.manage_backfill:
            self._hi_plan = config_hi_priority(self._hi_plan, action_hi)
        new_lo = config_lo_priority(self._lo_plan, action_lo)
        if not self.manage_lo_cores and new_lo.core_num != self._lo_plan.core_num:
            new_lo = self._lo_plan  # cores frozen; prefetcher move only
        if not self.manage_prefetchers:
            new_lo = LoPriorityPlan(
                core_num=new_lo.core_num,
                prefetcher_num=self._lo_plan.prefetcher_num,
                min_core_num=new_lo.min_core_num,
                max_core_num=new_lo.max_core_num,
            )
        self._lo_plan = new_lo

        lo_task_mask: frozenset[int] | None = None
        if self.manage_lo_cores:
            lo_task_mask = frozenset(
                self._node.lo_subdomain_cores()[: self._lo_plan.core_num]
            )
        prefetcher_count = (
            self._lo_plan.prefetcher_num if self.manage_prefetchers else None
        )
        backfill_mask: frozenset[int] | None = None
        if self.manage_backfill and self._node.backfill_tasks:
            # Backfill occupies the *highest* hi-subdomain core ids so the
            # ML task keeps the lowest ones; a plan throttled to zero cores
            # must yield an *empty* cpuset (parked tasks), not a lingering
            # one-core mask stealing hi-subdomain bandwidth.
            spare = list(self._node.hi_subdomain_cores())
            count = self._hi_plan.core_num
            backfill_mask = (
                frozenset(spare[-count:]) if count > 0 else frozenset()
            )

        return GovernorDecision(
            action_hi=action_hi,
            action_lo=action_lo,
            lo_cores=self._lo_plan.core_num,
            lo_prefetchers=self._lo_plan.prefetcher_num,
            backfill_cores=self._hi_plan.core_num,
            lo_task_mask=lo_task_mask,
            backfill_mask=backfill_mask,
            prefetcher_count=prefetcher_count,
        )


class CoreThrottleGovernor:
    """CT: reactive one-core-at-a-time throttling of the low tasks.

    Dormant until :meth:`engage` supplies the initial core grant (the old
    policy set it in ``plan_cpu``); while dormant the loop still samples —
    preserving the historical perf-window cadence — but records nothing.
    """

    def __init__(self, node: "Node", profile: QosProfile, ml_cores: int) -> None:
        self._node = node
        self.profile = profile
        self._ml_cores = ml_cores
        self._lo_cores: int | None = None

    def engage(self, cores: int) -> None:
        """Arm the controller with the current low-task core grant."""
        self._lo_cores = cores

    @property
    def lo_cores(self) -> int | None:
        """The current grant (``None`` while dormant)."""
        return self._lo_cores

    def _spare(self) -> tuple[int, ...]:
        return self._node.accel_socket_cores()[self._ml_cores:]

    def decide(self, m: KelpMeasurements) -> GovernorDecision | None:
        """One CT feedback step; ``None`` until engaged."""
        if self._lo_cores is None:
            return None
        profile = self.profile
        spare = self._spare()
        if profile.socket_bw.above(m.socket_bw) or profile.socket_latency.above(
            m.socket_latency
        ):
            action = Action.THROTTLE
            self._lo_cores = max(1, self._lo_cores - 1)
        elif profile.socket_bw.below(m.socket_bw) and profile.socket_latency.below(
            m.socket_latency
        ):
            action = Action.BOOST
            self._lo_cores = min(len(spare), self._lo_cores + 1)
        else:
            action = Action.NOP
        mask: frozenset[int] | None = None
        if action is not Action.NOP:
            mask = frozenset(spare[: self._lo_cores])
        return GovernorDecision(
            action_hi=Action.NOP,
            action_lo=action,
            lo_cores=self._lo_cores,
            lo_prefetchers=self._lo_cores,
            backfill_cores=0,
            lo_task_mask=mask,
        )


class MbaGovernor:
    """MBA: feedback control over one CLOS's memory-bandwidth throttle.

    Steps the MB% cap down under bandwidth/latency pressure and back up
    when both clear, within ``[floor, ceiling]``. The cap is emitted as a
    knob write only on a non-NOP tick (the historical write pattern); the
    actuator facade's read-back dedup additionally drops re-writes of a
    value already in effect at the clamp bounds.
    """

    def __init__(
        self,
        node: "Node",
        profile: QosProfile,
        ml_cores: int,
        clos: int,
        step: int = 10,
        floor: int = 10,
        ceiling: int = 100,
    ) -> None:
        self._node = node
        self.profile = profile
        self._ml_cores = ml_cores
        self._clos = clos
        self._step = step
        self._floor = floor
        self._ceiling = ceiling
        self.mb_percent = ceiling

    def decide(self, m: KelpMeasurements) -> GovernorDecision:
        """One MBA feedback step."""
        profile = self.profile
        if profile.socket_bw.above(m.socket_bw) or profile.socket_latency.above(
            m.socket_latency
        ):
            action = Action.THROTTLE
            self.mb_percent = max(self._floor, self.mb_percent - self._step)
        elif profile.socket_bw.below(m.socket_bw) and profile.socket_latency.below(
            m.socket_latency
        ):
            action = Action.BOOST
            self.mb_percent = min(self._ceiling, self.mb_percent + self._step)
        else:
            action = Action.NOP
        spare = len(self._node.accel_socket_cores()[self._ml_cores:])
        return GovernorDecision(
            action_hi=Action.NOP,
            action_lo=action,
            lo_cores=spare,
            # Report the throttle as the raw knob in the prefetcher slot's
            # units (the historical Fig 11/12 encoding), and by name too.
            lo_prefetchers=self.mb_percent,
            backfill_cores=0,
            mb_percent=(
                (self._clos, self.mb_percent)
                if action is not Action.NOP
                else None
            ),
            extra=(("mb_percent", float(self.mb_percent)),),
        )
