"""Seeded fleet-level fault schedules.

An :class:`IncidentSchedule` is a timed list of :class:`IncidentSpec`
injections against orchestrator / member / control-plane state — the input
half of the AIOpsLab-style loop (the output half being detection,
localization and remediation). Five incident classes are modeled:

* ``node-death`` — a member dies *silently* at ``start_s`` and reboots at
  ``end_s``: its server black-holes traffic, its telemetry freezes, and it
  keeps reporting its pre-death load (a traffic magnet for least-loaded
  routing). Nothing announces the failure.
* ``telemetry-blackout`` — the node keeps serving but both the fleet and
  the node's own governor see a frozen sensor snapshot until ``end_s``.
  An optional batch arrival rides along (``batch_workload`` /
  ``batch_intensity`` params): interference the blind governor cannot see.
* ``stuck-actuator`` — every control-plane knob write on the node fails
  inside the window (a deterministic fault window, no RNG). The governor
  keeps deciding; nothing lands. The same optional batch arrival provides
  interference the stuck knobs cannot throttle.
* ``noisy-neighbor`` — an unaccounted intruder tenant submits pathological
  high-demand requests (MoCA's abusive-tenant scenario) from a dedicated
  seeded arrival stream; its requests hog server lanes fleet-wide without
  ever appearing in the offered-request accounting.
* ``routing-misconfig`` — the admission router is wrapped so that a
  deterministic fraction of arrivals is null-routed (counted as offered,
  never submitted) until the configuration is restored.

Schedules are pure data: deterministic given ``(seed, knobs)``, JSON
round-trippable (:func:`save_scenario` / :func:`load_scenario`), and
picklable so an experiment sweep can ship one schedule to worker processes
via the sweep context.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: The incident classes, in canonical order.
INCIDENT_KINDS = (
    "node-death",
    "telemetry-blackout",
    "stuck-actuator",
    "noisy-neighbor",
    "routing-misconfig",
)

#: Incident kinds that target one specific node.
NODE_KINDS = frozenset({"node-death", "telemetry-blackout", "stuck-actuator"})

#: Scenario-file format tag.
SCENARIO_FORMAT = "repro.incidents/1"

#: Stream tag for schedule-level jitter (independent of every fleet stream).
_STREAM_SCHEDULE = 0x1C1D


@dataclass(frozen=True)
class IncidentSpec:
    """One timed fault injection.

    ``params`` is a tuple of ``(key, value)`` pairs (kept as a tuple so the
    spec stays hashable/frozen); :meth:`param` reads one with a default.
    """

    kind: str
    start_s: float
    duration_s: float
    #: Target node index for node-scoped kinds (``None`` otherwise).
    node: int | None = None
    params: tuple[tuple[str, float | int | str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise ConfigurationError(
                f"unknown incident kind {self.kind!r}; expected one of "
                f"{list(INCIDENT_KINDS)}"
            )
        if self.start_s < 0 or self.duration_s <= 0:
            raise ConfigurationError(
                f"incident {self.kind!r} needs start_s >= 0 and "
                f"duration_s > 0"
            )
        if self.kind in NODE_KINDS and self.node is None:
            raise ConfigurationError(
                f"incident {self.kind!r} targets a node; pass node="
            )
        # Canonical key order so specs compare equal however they were
        # built (generator vs scenario file); the sort is stable, so
        # last-write-wins still holds for a repeated key.
        object.__setattr__(
            self, "params", tuple(sorted(self.params, key=lambda kv: kv[0]))
        )

    @property
    def end_s(self) -> float:
        """The instant the underlying fault clears."""
        return self.start_s + self.duration_s

    def param(self, key: str, default=None):
        """Read one ``params`` entry (last write wins), or ``default``."""
        value = default
        for k, v in self.params:
            if k == key:
                value = v
        return value

    @property
    def target(self) -> str:
        """The ground-truth root-cause label localization must produce."""
        if self.kind in NODE_KINDS:
            return f"node:{self.node}"
        if self.kind == "noisy-neighbor":
            return f"tenant:{self.param('tenant', 'intruder')}"
        return "layer:routing"

    def as_dict(self) -> dict:
        """A JSON-clean rendering (scenario files, obs records)."""
        # Times are emitted at full precision: JSON round-trips Python
        # floats exactly, and a scenario reloaded from disk must replay
        # bit-identically to the schedule that generated it.
        data: dict = {
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "target": self.target,
        }
        if self.node is not None:
            data["node"] = self.node
        if self.params:
            data["params"] = {k: v for k, v in self.params}
        return data


@dataclass(frozen=True)
class IncidentSchedule:
    """An ordered, validated set of incident injections for one run."""

    incidents: tuple[IncidentSpec, ...] = ()
    #: Seeds the intruder arrival stream (and nothing else — every other
    #: injection is RNG-free by construction).
    seed: int = 0

    def __post_init__(self) -> None:
        starts = [i.start_s for i in self.incidents]
        if starts != sorted(starts):
            raise ConfigurationError(
                "incidents must be listed in start-time order"
            )

    def __len__(self) -> int:
        return len(self.incidents)

    @property
    def kinds(self) -> tuple[str, ...]:
        """The incident classes present, in schedule order."""
        return tuple(i.kind for i in self.incidents)

    def as_dict(self) -> dict:
        return {
            "format": SCENARIO_FORMAT,
            "seed": self.seed,
            "incidents": [i.as_dict() for i in self.incidents],
        }


def default_schedule(
    duration_s: float,
    nodes: int,
    seed: int = 0,
    classes: tuple[str, ...] = INCIDENT_KINDS,
    intruder_rate_qps: float | None = None,
    intruder_demand: float = 300.0,
    batch_workload: str = "stream",
    batch_intensity: int = 12,
    drop_fraction: float = 0.5,
) -> IncidentSchedule:
    """A seeded multi-incident scenario spread across ``duration_s``.

    Incidents are placed at evenly spaced fractions of the horizon with a
    small seeded jitter, each lasting ~9 % of it, so consecutive incidents
    never overlap and every one leaves a quiet gap for damage attribution.
    Node-scoped incidents round-robin across the fleet starting at node 0
    (whose index makes a silently dead node the least-loaded tie-break
    winner — the worst case for the routing layer).
    """
    if nodes < 1:
        raise ConfigurationError("default_schedule needs nodes >= 1")
    for kind in classes:
        if kind not in INCIDENT_KINDS:
            raise ConfigurationError(f"unknown incident class {kind!r}")
    if not classes:
        return IncidentSchedule(seed=seed)
    rng = np.random.default_rng(
        np.random.SeedSequence((seed, _STREAM_SCHEDULE))
    )
    n = len(classes)
    # Fractions of the horizon: centers spread over [0.14, 0.86].
    lo, hi = 0.14, 0.86
    step = (hi - lo) / max(n - 1, 1)
    length = min(0.09, 0.6 * step if n > 1 else 0.09) * duration_s
    incidents: list[IncidentSpec] = []
    node_cursor = 0
    for i, kind in enumerate(classes):
        center = (lo + i * step if n > 1 else 0.5) * duration_s
        jitter = float(rng.uniform(-0.01, 0.01)) * duration_s
        start = max(0.0, center + jitter - length / 2.0)
        node: int | None = None
        params: tuple[tuple[str, float | int | str], ...] = ()
        if kind in NODE_KINDS:
            node = node_cursor % nodes
            node_cursor += 1
        if kind in ("telemetry-blackout", "stuck-actuator"):
            params = (
                ("batch_workload", batch_workload),
                ("batch_intensity", batch_intensity),
            )
        elif kind == "noisy-neighbor":
            rate = (
                intruder_rate_qps
                if intruder_rate_qps is not None
                else 0.8 * nodes
            )
            params = (
                ("tenant", "intruder"),
                ("rate_qps", rate),
                ("demand", intruder_demand),
            )
        elif kind == "routing-misconfig":
            params = (("drop_fraction", drop_fraction),)
        incidents.append(
            IncidentSpec(
                kind=kind,
                start_s=start,
                duration_s=length,
                node=node,
                params=params,
            )
        )
    return IncidentSchedule(incidents=tuple(incidents), seed=seed)


def save_scenario(schedule: IncidentSchedule, path: str) -> None:
    """Write a schedule as a JSON scenario file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(schedule.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_scenario(path: str) -> IncidentSchedule:
    """Read a JSON scenario file back into an :class:`IncidentSchedule`."""
    if not os.path.exists(path):
        raise ConfigurationError(f"scenario file not found: {path}")
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format") != SCENARIO_FORMAT:
        raise ConfigurationError(
            f"{path}: not a {SCENARIO_FORMAT} scenario file "
            f"(format={data.get('format')!r})"
        )
    incidents = []
    for row in data.get("incidents", ()):
        params = tuple(sorted(dict(row.get("params", {})).items()))
        incidents.append(
            IncidentSpec(
                kind=row["kind"],
                start_s=float(row["start_s"]),
                duration_s=float(row["duration_s"]),
                node=row.get("node"),
                params=params,
            )
        )
    return IncidentSchedule(
        incidents=tuple(incidents), seed=int(data.get("seed", 0))
    )
