"""The incident engine: scheduled injection + online detection + response.

:class:`IncidentEngine` is a :class:`~repro.fleet.orchestrator.FleetHooks`
implementation. Attached to a fleet run it

1. schedules every :class:`~repro.incidents.faults.IncidentSpec` of its
   schedule as simulator events (injection at ``start_s``, the underlying
   fault clearing at ``end_s``),
2. freezes one :class:`~repro.incidents.detect.FleetView` per control tick
   from the members' telemetry exports, the counted request counters and
   the actuation journals, feeding the detector bank, and
3. when built with ``remediate=True``, localizes each alarm and dispatches
   the :class:`~repro.incidents.remediate.Remediator` playbooks.

Determinism: the only randomness an incident ever introduces is the
intruder tenant's arrival stream, drawn from a dedicated
``SeedSequence((schedule.seed, tag, incident_index))`` generator — node
death, blackouts, fault windows and null-routing are all RNG-free, and the
engine never draws from (or reorders draws of) the fleet's own router /
tenant / node streams. An engine with an *empty* schedule only performs
reads, so attaching one leaves a clean run bit-identical to an unhooked
run — the property the composition tests pin.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.fleet.config import BatchJobSpec
from repro.fleet.orchestrator import FleetHooks, FleetOrchestrator
from repro.fleet.routing import Router
from repro.incidents.detect import (
    Alarm,
    DetectorBank,
    DetectorConfig,
    FleetView,
    NodeView,
)
from repro.incidents.faults import IncidentSchedule, IncidentSpec
from repro.incidents.localize import Candidate, localize
from repro.incidents.remediate import Remediator
from repro.workloads.loadgen import OpenLoopGenerator

if TYPE_CHECKING:
    from repro.fleet.member import FleetMember
    from repro.sim import Simulator

#: Stream tag for intruder arrival processes (independent of every fleet
#: stream tag in :mod:`repro.fleet.orchestrator`).
_STREAM_INTRUDER = 0x41_46


class _NullRouteRouter(Router):
    """A misconfigured router: silently drops a fraction of admissions.

    Wraps the real router so the inner routing decision (and, for the
    random strategy, its RNG draw) happens exactly as before; a
    deterministic error-accumulator then null-routes ``drop_fraction`` of
    requests with no RNG of its own.
    """

    name = "null-route"

    def __init__(self, inner: Router, drop_fraction: float) -> None:
        self.inner = inner
        self._fraction = drop_fraction
        self._acc = 0.0

    def choose(self, members: Sequence["FleetMember"]):
        member = self.inner.choose(members)
        self._acc += self._fraction
        if self._acc >= 1.0:
            self._acc -= 1.0
            return None
        return member


class IncidentEngine(FleetHooks):
    """Fault injection, detection and (optional) auto-remediation."""

    def __init__(
        self,
        schedule: IncidentSchedule,
        remediate: bool = False,
        detector_config: DetectorConfig | None = None,
    ) -> None:
        self.schedule = schedule
        self.remediate = remediate
        self._detector_config = detector_config or DetectorConfig()
        #: Per-tick counted counters: ``(time, offered, completed, good)``.
        self.ticks: list[tuple[float, int, int, int]] = []
        #: Every alarm with its ranked candidates, in firing order.
        self.alarms: list[tuple[Alarm, tuple[Candidate, ...]]] = []
        self.remediator: Remediator | None = None
        self._bank: DetectorBank | None = None
        self._orch: FleetOrchestrator | None = None
        self._sim: "Simulator | None" = None
        self._expected_router: Router | None = None
        self._intruders: dict[str, OpenLoopGenerator] = {}
        #: Per-node incremental journal scan state: (offset, failed count).
        self._journal_cursor: list[tuple[int, int]] = []
        self._intruder_name = "intruder"
        for spec in schedule.incidents:
            if spec.kind == "noisy-neighbor":
                self._intruder_name = str(spec.param("tenant", "intruder"))

    # ------------------------------------------------------------- hooks
    def on_start(self, orchestrator: FleetOrchestrator, sim: "Simulator") -> None:
        self._orch = orchestrator
        self._sim = sim
        self._expected_router = orchestrator.router
        self._journal_cursor = [(0, 0)] * len(orchestrator.members)
        self._bank = DetectorBank(
            interval=orchestrator.config.interval,
            config=self._detector_config,
        )
        if self.remediate:
            assert self._expected_router is not None
            self.remediator = Remediator(
                orchestrator,
                self._expected_router,
                throttle_tenant=self._throttle_tenant,
            )
        for index, spec in enumerate(self.schedule.incidents):
            sim.at(
                spec.start_s,
                partial(self._inject, index),
                label=f"incident:{spec.kind}:start",
            )
            if spec.end_s < orchestrator.config.duration:
                sim.at(
                    spec.end_s,
                    partial(self._clear, index),
                    label=f"incident:{spec.kind}:end",
                )

    def on_tick(self, orchestrator: FleetOrchestrator, now: float) -> None:
        assert self._bank is not None
        view = self._build_view(orchestrator, now)
        self.ticks.append((now, view.offered, view.completed, view.good))
        alarms = self._bank.observe(view)
        for alarm in alarms:
            candidates = localize(
                alarm, self._bank.views, intruder_name=self._intruder_name
            )
            self.alarms.append((alarm, candidates))
            if self.remediator is not None:
                self.remediator.handle(alarm, candidates, view)
        if self.remediator is not None:
            self.remediator.tick(view)

    # --------------------------------------------------------- injection
    def _inject(self, index: int) -> None:
        assert self._orch is not None and self._sim is not None
        spec = self.schedule.incidents[index]
        orch = self._orch
        if spec.kind == "node-death":
            member = orch.members[spec.node]
            # A *silent* death: the member stays in rotation, black-holing
            # whatever the router keeps sending it.
            orch.requests_dropped += member.fail()
        elif spec.kind == "telemetry-blackout":
            member = orch.members[spec.node]
            member.begin_blackout(spec.end_s)
            self._maybe_batch_arrival(spec, member)
        elif spec.kind == "stuck-actuator":
            member = orch.members[spec.node]
            plane = member.policy.control_plane
            plane.fault_windows.append((spec.start_s, spec.end_s))
            self._maybe_batch_arrival(spec, member)
        elif spec.kind == "noisy-neighbor":
            self._start_intruder(index, spec)
        elif spec.kind == "routing-misconfig":
            assert orch.router is not None
            fraction = float(spec.param("drop_fraction", 0.5))
            orch.router = _NullRouteRouter(orch.router, fraction)

    def _clear(self, index: int) -> None:
        assert self._orch is not None
        spec = self.schedule.incidents[index]
        orch = self._orch
        if spec.kind == "node-death":
            # The node reboots and silently rejoins; if remediation
            # quarantined it, the recovery probe restores rotation once
            # fresh telemetry confirms the reboot.
            orch.members[spec.node].restart()
        elif spec.kind == "noisy-neighbor":
            name = str(spec.param("tenant", "intruder"))
            generator = self._intruders.pop(name, None)
            if generator is not None:
                generator.stop()
        elif spec.kind == "routing-misconfig":
            # The bad config is rolled back at the fault's natural end (an
            # operator fixing it out-of-band); remediation just gets there
            # first. Blackouts and fault windows expire by themselves.
            router = orch.router
            if isinstance(router, _NullRouteRouter):
                orch.router = router.inner

    def _maybe_batch_arrival(self, spec: IncidentSpec, member) -> None:
        """The interference rider: a batch job pinned to the faulted node."""
        workload = spec.param("batch_workload")
        if workload is None:
            return
        assert self._orch is not None
        queue = self._orch.queue
        if queue is None:  # pragma: no cover - hooks only run inside run()
            return
        queue.add_job(
            BatchJobSpec(
                workload=str(workload),
                intensity=int(spec.param("batch_intensity", 8)),
            ),
            member=member,
        )

    def _start_intruder(self, index: int, spec: IncidentSpec) -> None:
        assert self._sim is not None
        name = str(spec.param("tenant", "intruder"))
        demand = float(spec.param("demand", 100.0))
        rate = float(spec.param("rate_qps", 2.0))
        generator = OpenLoopGenerator(
            sim=self._sim,
            rate_qps=rate,
            submit=partial(self._intruder_submit, demand),
            rng=np.random.default_rng(
                np.random.SeedSequence(
                    (self.schedule.seed, _STREAM_INTRUDER, index)
                )
            ),
        )
        self._intruders[name] = generator
        generator.start()

    def _intruder_submit(self, demand: float) -> None:
        """One intruder arrival: grab the least-loaded in-rotation node.

        The intruder does its own least-loaded probing (tenant-side load
        balancing) rather than going through the fleet router, so it never
        consumes a router RNG draw; its requests are ``counted=False`` —
        invisible to the offered/good accounting, visible only as occupied
        lanes and telemetry load.
        """
        assert self._orch is not None
        eligible = [m for m in self._orch.members if m.in_rotation]
        if not eligible:  # pragma: no cover - fleets never fully drain
            return
        member = min(eligible, key=lambda m: (m.load, m.index))
        member.submit(-1, demand=demand, counted=False)

    def _throttle_tenant(self, name: str) -> bool:
        generator = self._intruders.pop(name, None)
        if generator is None:
            return False
        generator.stop()
        return True

    # --------------------------------------------------------------- view
    def _build_view(
        self, orchestrator: FleetOrchestrator, now: float
    ) -> FleetView:
        offered, completed, good, _ = orchestrator.counters()
        nodes = []
        for member in orchestrator.members:
            signals = member.last_signals
            assert signals is not None  # sampled earlier this tick
            offset, failed = self._journal_cursor[member.index]
            journal = member.policy.control_plane.journal
            while offset < len(journal):
                if journal[offset].status == "failed":
                    failed += 1
                offset += 1
            self._journal_cursor[member.index] = (offset, failed)
            nodes.append(
                NodeView(
                    index=member.index,
                    signals_time=signals.time,
                    saturation=signals.saturation,
                    latency_factor=signals.latency_factor,
                    socket_bw_gbps=signals.socket_bw_gbps,
                    inflight=signals.inflight,
                    queued=signals.queued,
                    batch_jobs=signals.batch_jobs,
                    hot=signals.hot,
                    journal_failed=failed,
                    journal_total=offset,
                )
            )
        return FleetView(
            time=now,
            interval=orchestrator.config.interval,
            offered=offered,
            completed=completed,
            good=good,
            nodes=tuple(nodes),
        )

    # ------------------------------------------------------------- export
    def export(self) -> dict:
        """A JSON-clean, picklable record of everything the engine saw."""
        return {
            "incidents": [s.as_dict() for s in self.schedule.incidents],
            "remediate": self.remediate,
            "ticks": [
                [round(t, 6), offered, completed, good]
                for t, offered, completed, good in self.ticks
            ],
            "alarms": [
                {
                    **alarm.as_dict(),
                    "candidates": [c.as_dict() for c in candidates],
                }
                for alarm, candidates in self.alarms
            ],
            "remediations": (
                [a.as_dict() for a in self.remediator.actions]
                if self.remediator is not None
                else []
            ),
        }
