"""Remediation playbooks: act on a localized alarm, then verify recovery.

The :class:`Remediator` is the actuator half of the incident loop. Given an
alarm's ranked candidates it dispatches exactly one playbook per distinct
``(playbook, target)`` pair:

* ``quarantine-reroute`` — a node whose health probe says *dead*: pull it
  from routing rotation and requeue its batch work on healthy nodes. The
  probe is the one place remediation touches live member state (a
  management-network health RPC, distinguishing a crashed server from a
  merely blind one).
* ``conservative-governor`` — a node that is alive but telemetry-blind:
  swap its control loop onto :class:`ConservativeGovernor`, the static
  worst-case throttle (one low-priority core, prefetchers off — the CT
  safe mode). A governor that cannot see must assume interference.
* ``drain-batch`` — a node journaling failed knob writes: its governor
  cannot enforce anything, so remove the interference instead — requeue
  the node's batch jobs elsewhere (the job kill travels over the
  management network, not through the stuck local knobs) and stop placing
  new ones.
* ``restore-routing`` — the routing layer is implicated: reinstall the
  expected router object, undoing any misconfiguration wholesale.
* ``throttle-tenant`` — an unaccounted noisy tenant: rate-limit it at
  admission (the engine stops the intruder's arrival stream).

Each applied playbook is tracked until its *recovery probe* passes — fresh
telemetry for quarantine/conservative targets, a failure-free actuation
journal for drains — at which point the remediator restores rotation, the
original governor, or batch placement, and records the restore as its own
action. Everything is deterministic: no RNG, no wall clock, plain reads of
the same views the detectors saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.control.governors import Governor, GovernorDecision
from repro.core.actions import Action
from repro.core.measurements import KelpMeasurements
from repro.incidents.detect import Alarm, FleetView
from repro.incidents.localize import Candidate

if TYPE_CHECKING:
    from repro.fleet.orchestrator import FleetOrchestrator
    from repro.fleet.routing import Router


class ConservativeGovernor:
    """The static safe-mode decision kernel: throttle everything, always.

    Used as a fallback when a node's telemetry cannot be trusted: grant the
    low-priority subdomain its minimum (one core, prefetchers off) and keep
    backfill at one core, regardless of what the (possibly frozen) sensor
    sample claims. Decisions are constant, so the control plane's dedup
    layer reduces steady state to zero writes per tick.
    """

    def __init__(self, node) -> None:
        lo_cores = node.lo_subdomain_cores()
        hi_cores = node.hi_subdomain_cores()
        self._lo_mask = frozenset(lo_cores[:1])
        self._backfill_mask = frozenset(hi_cores[-1:])

    def decide(self, m: KelpMeasurements) -> GovernorDecision | None:
        return GovernorDecision(
            action_hi=Action.THROTTLE,
            action_lo=Action.THROTTLE,
            lo_cores=len(self._lo_mask),
            lo_prefetchers=0,
            backfill_cores=len(self._backfill_mask),
            lo_task_mask=self._lo_mask,
            backfill_mask=self._backfill_mask,
            prefetcher_count=0,
            extra=(("conservative", 1.0),),
        )


@dataclass(frozen=True)
class RemediationAction:
    """One playbook application (or recovery restore)."""

    time: float
    playbook: str
    target: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "time": round(self.time, 6),
            "playbook": self.playbook,
            "target": self.target,
            "detail": self.detail,
        }


#: Ticks of failure-free journal before a drained node takes batch again.
_DRAIN_CLEAR_TICKS = 3


class Remediator:
    """Dispatches playbooks for localized alarms and probes recovery."""

    def __init__(
        self,
        orchestrator: "FleetOrchestrator",
        expected_router: "Router",
        throttle_tenant: Callable[[str], bool],
    ) -> None:
        self._orch = orchestrator
        self._expected_router = expected_router
        self._throttle_tenant = throttle_tenant
        #: Every action taken, in time order (the obs `remediation` stream).
        self.actions: list[RemediationAction] = []
        #: node -> original governor, for conservative fallbacks in force.
        self._saved_governors: dict[int, Governor] = {}
        #: Quarantined node indexes awaiting a healthy probe.
        self._quarantined: set[int] = set()
        #: Drained node index -> (journal_failed watermark, clean ticks).
        self._drained: dict[int, tuple[int, int]] = {}
        #: Tenants already throttled (throttling is idempotent and final).
        self._throttled: set[str] = set()
        #: node -> recent cumulative journal_failed values (oldest first);
        #: the drain playbook requires failures *recent* enough to appear
        #: in this window, so interference on a node whose actuators still
        #: work is left to that node's own governor.
        self._journal_history: dict[int, list[int]] = {}

    #: Ticks of journal history the drain predicate looks back over.
    _JOURNAL_WINDOW = 7

    def _note_journal(self, view: FleetView) -> None:
        for node in view.nodes:
            series = self._journal_history.setdefault(node.index, [])
            series.append(node.journal_failed)
            if len(series) > self._JOURNAL_WINDOW:
                del series[: len(series) - self._JOURNAL_WINDOW]

    def _recent_failures(self, index: int, failed_now: int) -> int:
        series = self._journal_history.get(index)
        if not series:
            return 0
        return failed_now - series[0]

    # ------------------------------------------------------------ dispatch
    def handle(
        self, alarm: Alarm, candidates: tuple[Candidate, ...], view: FleetView
    ) -> None:
        """Apply the playbook for the alarm's top candidate (if any)."""
        if not candidates:
            return
        top = candidates[0]
        kind, _, rest = top.label.partition(":")
        if kind == "node":
            self._handle_node(int(rest), alarm, view)
        elif kind == "layer" and rest == "routing":
            self._restore_routing(view)
        elif kind == "tenant":
            self._handle_tenant(rest, view)

    def _handle_node(self, index: int, alarm: Alarm, view: FleetView) -> None:
        member = self._orch.members[index]
        target = f"node:{index}"
        node_view = view.nodes[index]
        stale = view.time - node_view.signals_time > 0.5 * view.interval
        if not member.alive:
            # Health probe failed: the node is gone, not just blind.
            if index in self._quarantined:
                return
            requeued = self._orch.quarantine_member(index)
            self._quarantined.add(index)
            self._saved_governors.pop(index, None)
            self.actions.append(
                RemediationAction(
                    time=view.time,
                    playbook="quarantine-reroute",
                    target=target,
                    detail=(
                        f"health probe dead; {requeued} batch jobs requeued"
                    ),
                )
            )
            return
        if stale:
            # Alive but blind: static safe-mode throttle until sight returns.
            if index in self._saved_governors:
                return
            loop = member.policy.loop
            if loop is None:
                return
            self._saved_governors[index] = loop.governor
            loop.governor = ConservativeGovernor(member.node)
            self.actions.append(
                RemediationAction(
                    time=view.time,
                    playbook="conservative-governor",
                    target=target,
                    detail="health probe alive, telemetry frozen",
                )
            )
            return
        # Alive and sighted: only act when the node's knob writes are
        # demonstrably failing — then its governor cannot contain the
        # interference, so remove it instead. A healthy sighted node keeps
        # its own governor in charge (no playbook).
        if index in self._drained:
            return
        if self._recent_failures(index, node_view.journal_failed) <= 0:
            return
        queue = self._orch.queue
        requeued = queue.requeue_node(member) if queue is not None else 0
        member.accepts_batch = False
        self._drained[index] = (node_view.journal_failed, 0)
        self.actions.append(
            RemediationAction(
                time=view.time,
                playbook="drain-batch",
                target=target,
                detail=(
                    f"{requeued} batch jobs requeued off node with "
                    f"{node_view.journal_failed} failed writes journaled"
                ),
            )
        )

    def _restore_routing(self, view: FleetView) -> None:
        if self._orch.router is self._expected_router:
            return
        self._orch.router = self._expected_router
        self.actions.append(
            RemediationAction(
                time=view.time,
                playbook="restore-routing",
                target="layer:routing",
                detail="reinstalled expected router configuration",
            )
        )

    def _handle_tenant(self, name: str, view: FleetView) -> None:
        if name in self._throttled:
            return
        if self._throttle_tenant(name):
            self._throttled.add(name)
            self.actions.append(
                RemediationAction(
                    time=view.time,
                    playbook="throttle-tenant",
                    target=f"tenant:{name}",
                    detail="admission rate limit applied to intruder stream",
                )
            )

    # ------------------------------------------------------------ recovery
    def tick(self, view: FleetView) -> None:
        """Probe every in-force playbook; restore what has recovered."""
        self._note_journal(view)
        for index in sorted(self._quarantined):
            member = self._orch.members[index]
            node_view = view.nodes[index]
            fresh = view.time - node_view.signals_time <= 0.5 * view.interval
            if member.alive and fresh:
                self._quarantined.discard(index)
                self._orch.restore_member(index)
                self.actions.append(
                    RemediationAction(
                        time=view.time,
                        playbook="restore-node",
                        target=f"node:{index}",
                        detail="health probe and telemetry recovered",
                    )
                )
        for index in sorted(self._saved_governors):
            node_view = view.nodes[index]
            fresh = view.time - node_view.signals_time <= 0.5 * view.interval
            if fresh:
                loop = self._orch.members[index].policy.loop
                if loop is not None:
                    loop.governor = self._saved_governors.pop(index)
                else:  # pragma: no cover - defensive
                    del self._saved_governors[index]
                self.actions.append(
                    RemediationAction(
                        time=view.time,
                        playbook="restore-governor",
                        target=f"node:{index}",
                        detail="telemetry recovered; original governor back",
                    )
                )
        for index in sorted(self._drained):
            watermark, clean = self._drained[index]
            failed_now = view.nodes[index].journal_failed
            if failed_now > watermark:
                self._drained[index] = (failed_now, 0)
                continue
            clean += 1
            if clean < _DRAIN_CLEAR_TICKS:
                self._drained[index] = (watermark, clean)
                continue
            del self._drained[index]
            self._orch.members[index].accepts_batch = True
            self.actions.append(
                RemediationAction(
                    time=view.time,
                    playbook="restore-batch",
                    target=f"node:{index}",
                    detail=(
                        f"{_DRAIN_CLEAR_TICKS} failure-free intervals; "
                        "node takes batch work again"
                    ),
                )
            )
