"""Online anomaly detectors over the fleet's telemetry streams.

Detection consumes exactly what a production watchdog would: the per-node
telemetry exports (:class:`~repro.fleet.member.NodeSignals`, including the
frozen snapshots dead/blind nodes keep re-exporting), the counted
offered/good request counters, and the per-node actuation-journal failure
counts. Each control interval the incident engine freezes those into one
:class:`FleetView`; the :class:`DetectorBank` runs four detectors over the
view history:

* :class:`TelemetrySilence` — a node whose exported ``signals.time`` stops
  advancing (death and blackout both present exactly this way; telling
  them apart is the remediation layer's health probe, not the detector's
  job).
* :class:`AttainmentDrop` — the SLO-good completion rate falls away from
  the offered rate over a short sliding window (black holes, null-routes,
  lane-hogging intruders).
* :class:`ActuationDivergence` — a node's control plane keeps journaling
  *failed* knob writes (the governor decides, nothing lands).
* :class:`SaturationSpike` — a node's memory-system saturation jumps far
  above its own pre-incident baseline (interference arrival).

Every detector is episodic: it fires one :class:`Alarm` when its predicate
trips and re-arms only after the predicate clears, so a persistent fault
produces one alarm, not one per tick. All state is plain arithmetic over
the views — no RNG anywhere, which is what makes alarms bit-identical
across serial and ``--jobs N`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeView:
    """One node's fleet-visible state at one control tick."""

    index: int
    #: Timestamp of the node's exported telemetry (stale = frozen export).
    signals_time: float
    saturation: float
    latency_factor: float
    socket_bw_gbps: float
    inflight: int
    queued: int
    batch_jobs: int
    hot: bool
    #: Cumulative failed knob writes in the node's actuation journal.
    journal_failed: int
    #: Cumulative journal length (failed + deferred + ok).
    journal_total: int


@dataclass(frozen=True)
class FleetView:
    """Everything the detectors may see at one control tick."""

    time: float
    interval: float
    #: Cumulative counted request counters (admission-epoch accounting).
    offered: int
    completed: int
    good: int
    nodes: tuple[NodeView, ...]

    @property
    def total_load(self) -> int:
        """Fleet-wide in-flight + queued requests (from telemetry exports)."""
        return sum(n.inflight + n.queued for n in self.nodes)


@dataclass(frozen=True)
class Alarm:
    """One detector firing."""

    time: float
    detector: str
    #: Node the detector implicates (None for fleet-scope detectors).
    node: int | None = None
    #: JSON-clean evidence fields.
    detail: tuple[tuple[str, float | int | str], ...] = ()

    def as_dict(self) -> dict:
        data: dict = {"time": round(self.time, 6), "detector": self.detector}
        if self.node is not None:
            data["node"] = self.node
        if self.detail:
            data["detail"] = {k: v for k, v in self.detail}
        return data


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds shared by the detector bank (deterministic knobs only)."""

    #: Consecutive stale telemetry exports before silence fires.
    silence_ticks: int = 2
    #: Sliding window (ticks) for the attainment-rate comparison.
    attainment_window: int = 3
    #: Fire when windowed good/offered falls below this...
    attainment_floor: float = 0.8
    #: ...and re-arm only after it recovers above this (hysteresis).
    attainment_clear: float = 0.9
    #: Minimum windowed offered count before the ratio is trusted.
    attainment_min_offered: int = 8
    #: New failed journal writes over the divergence window before firing.
    divergence_failures: int = 3
    divergence_window: int = 2
    #: Saturation rise above the node's own baseline before firing.
    saturation_jump: float = 0.3
    #: EWMA weight for the saturation baseline (updated while quiet).
    saturation_alpha: float = 0.2


class TelemetrySilence:
    """Per-node staleness watchdog over exported ``signals.time``."""

    name = "telemetry-silence"

    def __init__(self, config: DetectorConfig) -> None:
        self._config = config
        self._streak: dict[int, int] = {}
        self._fired: set[int] = set()

    def observe(self, view: FleetView) -> list[Alarm]:
        alarms: list[Alarm] = []
        for node in view.nodes:
            # A live export carries this tick's timestamp; anything older
            # than half an interval is a frozen snapshot.
            stale = view.time - node.signals_time > 0.5 * view.interval
            if not stale:
                self._streak[node.index] = 0
                self._fired.discard(node.index)
                continue
            streak = self._streak.get(node.index, 0) + 1
            self._streak[node.index] = streak
            if (
                streak >= self._config.silence_ticks
                and node.index not in self._fired
            ):
                self._fired.add(node.index)
                alarms.append(
                    Alarm(
                        time=view.time,
                        detector=self.name,
                        node=node.index,
                        detail=(
                            ("stale_ticks", streak),
                            ("last_export_s", round(node.signals_time, 6)),
                        ),
                    )
                )
        return alarms


class AttainmentDrop:
    """Windowed SLO-good rate vs offered rate, with hysteresis."""

    name = "attainment-drop"

    def __init__(self, config: DetectorConfig) -> None:
        self._config = config
        self._in_episode = False

    def observe(self, view: FleetView, history: list[FleetView]) -> list[Alarm]:
        window = self._config.attainment_window
        if len(history) <= window:
            return []
        base = history[-1 - window]
        d_offered = view.offered - base.offered
        d_good = view.good - base.good
        if d_offered < self._config.attainment_min_offered:
            return []
        ratio = d_good / d_offered
        if self._in_episode:
            if ratio >= self._config.attainment_clear:
                self._in_episode = False
            return []
        if ratio < self._config.attainment_floor:
            self._in_episode = True
            return [
                Alarm(
                    time=view.time,
                    detector=self.name,
                    detail=(
                        ("window_offered", d_offered),
                        ("window_good", d_good),
                        ("ratio", round(ratio, 6)),
                    ),
                )
            ]
        return []


class ActuationDivergence:
    """Per-node failed-knob-write watchdog over the actuation journal."""

    name = "actuation-divergence"

    def __init__(self, config: DetectorConfig) -> None:
        self._config = config
        self._failed: dict[int, list[int]] = {}
        self._fired: set[int] = set()

    def observe(self, view: FleetView) -> list[Alarm]:
        alarms: list[Alarm] = []
        window = self._config.divergence_window
        for node in view.nodes:
            series = self._failed.setdefault(node.index, [])
            series.append(node.journal_failed)
            if len(series) > window + 1:
                del series[: len(series) - window - 1]
            delta = series[-1] - series[0]
            if delta <= 0:
                self._fired.discard(node.index)
                continue
            if (
                delta >= self._config.divergence_failures
                and node.index not in self._fired
            ):
                self._fired.add(node.index)
                alarms.append(
                    Alarm(
                        time=view.time,
                        detector=self.name,
                        node=node.index,
                        detail=(
                            ("failed_writes", delta),
                            ("journal_failed_total", node.journal_failed),
                        ),
                    )
                )
        return alarms


class SaturationSpike:
    """Per-node saturation vs its own quiet-time EWMA baseline."""

    name = "saturation-spike"

    def __init__(self, config: DetectorConfig) -> None:
        self._config = config
        self._baseline: dict[int, float] = {}
        self._fired: set[int] = set()

    def observe(self, view: FleetView) -> list[Alarm]:
        alarms: list[Alarm] = []
        alpha = self._config.saturation_alpha
        for node in view.nodes:
            baseline = self._baseline.get(node.index)
            if baseline is None:
                self._baseline[node.index] = node.saturation
                continue
            jump = node.saturation - baseline
            if jump >= self._config.saturation_jump:
                if node.index not in self._fired:
                    self._fired.add(node.index)
                    alarms.append(
                        Alarm(
                            time=view.time,
                            detector=self.name,
                            node=node.index,
                            detail=(
                                ("saturation", round(node.saturation, 6)),
                                ("baseline", round(baseline, 6)),
                            ),
                        )
                    )
                # The baseline is frozen during the episode so a slow ramp
                # cannot launder itself into the quiet-time average.
                continue
            self._fired.discard(node.index)
            self._baseline[node.index] = (
                (1.0 - alpha) * baseline + alpha * node.saturation
            )
        return alarms


@dataclass
class DetectorBank:
    """Runs every detector over the view stream, keeping bounded history."""

    interval: float
    config: DetectorConfig = field(default_factory=DetectorConfig)
    #: Maximum retained views (localization looks a few ticks back).
    history_limit: int = 64

    def __post_init__(self) -> None:
        self.views: list[FleetView] = []
        self._silence = TelemetrySilence(self.config)
        self._attainment = AttainmentDrop(self.config)
        self._divergence = ActuationDivergence(self.config)
        self._saturation = SaturationSpike(self.config)

    def observe(self, view: FleetView) -> list[Alarm]:
        """Ingest one tick's view; return every alarm that fired on it."""
        alarms: list[Alarm] = []
        alarms.extend(self._silence.observe(view))
        alarms.extend(self._divergence.observe(view))
        alarms.extend(self._saturation.observe(view))
        alarms.extend(self._attainment.observe(view, self.views))
        self.views.append(view)
        if len(self.views) > self.history_limit:
            del self.views[: len(self.views) - self.history_limit]
        return alarms
