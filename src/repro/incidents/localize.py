"""Root-cause localization: rank node / tenant / layer candidates per alarm.

Localization is pure evidence arithmetic over the same
:class:`~repro.incidents.detect.FleetView` history the detectors consumed —
it never touches orchestrator internals, so an alarm's candidate ranking is
exactly reproducible from the recorded view stream. The rules, in priority
order (each producing scored :class:`Candidate` rows):

1. **Stale telemetry** — a node whose export timestamp stopped advancing is
   implicated directly (death or blackout; the remediation layer's health
   probe disambiguates).
2. **Failed actuation** — a node journaling failed knob writes is stuck.
3. **Load spike** — fleet-wide in-flight + queued well above the recent
   baseline while the *counted* offered rate is unchanged means traffic the
   admission accounting never saw: an unaccounted (noisy-neighbor) tenant.
4. **Silent shortfall** — completions falling short of offered with fresh
   telemetry, healthy actuation and no load growth means requests vanish
   between admission and submit: the routing layer.
5. **Saturation outlier** — fallback: the node furthest above the fleet's
   median saturation.

Scores are heuristic confidence values in (0, 1]; ties are impossible by
construction (rule priority contributes a fixed offset per rule class).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.incidents.detect import Alarm, FleetView

#: Ticks of view history the load / journal baselines look back over.
_BASELINE_LAG = 6

#: Ticks for the completion-shortfall comparison — matched to the
#: attainment detector's window, so the evidence that trips the detector is
#: the evidence localization judges (a longer baseline would dilute a fresh
#: shortfall below threshold with pre-incident ticks).
_SHORTFALL_LAG = 3

#: Fleet load must exceed baseline by this factor (and margin) to count as
#: an unaccounted-traffic spike.
_LOAD_SPIKE_FACTOR = 2.0
_LOAD_SPIKE_MARGIN = 4


@dataclass(frozen=True)
class Candidate:
    """One ranked root-cause hypothesis."""

    #: ``node:<i>``, ``tenant:<name>`` or ``layer:routing``.
    label: str
    #: Heuristic confidence in (0, 1].
    score: float
    evidence: str

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "score": round(self.score, 6),
            "evidence": self.evidence,
        }


def localize(
    alarm: Alarm,
    views: list[FleetView],
    intruder_name: str = "intruder",
) -> tuple[Candidate, ...]:
    """Rank root-cause candidates for one alarm, most likely first.

    ``views`` is the detector bank's history *including* the tick the alarm
    fired on (the engine appends before localizing).
    """
    if not views:
        return ()
    view = views[-1]
    candidates: list[Candidate] = []

    # Rule 1: stale telemetry exports.
    for node in view.nodes:
        lag = view.time - node.signals_time
        if lag > 0.5 * view.interval:
            staleness = min(lag / max(view.interval, 1e-9), 16.0)
            candidates.append(
                Candidate(
                    label=f"node:{node.index}",
                    score=0.9 + 0.1 * min(staleness / 16.0, 1.0),
                    evidence=(
                        f"telemetry export frozen for {lag:.1f}s "
                        f"({staleness:.1f} intervals)"
                    ),
                )
            )

    # Rule 2: failed actuation writes (recent, not all-time).
    base_view = views[max(0, len(views) - 1 - _BASELINE_LAG)]
    base_failed = {n.index: n.journal_failed for n in base_view.nodes}
    for node in view.nodes:
        delta = node.journal_failed - base_failed.get(node.index, 0)
        if delta > 0:
            candidates.append(
                Candidate(
                    label=f"node:{node.index}",
                    score=0.8 + 0.1 * min(delta / 20.0, 1.0),
                    evidence=f"{delta} failed knob writes in recent journal",
                )
            )

    # Rules 3/4 need a baseline a few ticks back.
    load_now = view.total_load
    load_base = base_view.total_load
    short_view = views[max(0, len(views) - 1 - _SHORTFALL_LAG)]
    d_offered = view.offered - short_view.offered
    d_completed = view.completed - short_view.completed
    spike = load_now > _LOAD_SPIKE_FACTOR * load_base + _LOAD_SPIKE_MARGIN
    if spike:
        candidates.append(
            Candidate(
                label=f"tenant:{intruder_name}",
                score=0.7
                + 0.1 * min(load_now / max(4.0 * (load_base + 1), 1.0), 1.0),
                evidence=(
                    f"fleet load {load_now} vs baseline {load_base} with "
                    f"offered rate unchanged ({d_offered} counted arrivals)"
                ),
            )
        )
    elif d_offered > 0 and d_completed < 0.8 * d_offered:
        shortfall = 1.0 - d_completed / d_offered
        candidates.append(
            Candidate(
                label="layer:routing",
                score=0.6 + 0.1 * min(shortfall, 1.0),
                evidence=(
                    f"{d_offered - d_completed} of {d_offered} admitted "
                    "requests vanished before completing, telemetry and "
                    "actuation healthy"
                ),
            )
        )

    # Rule 5: saturation outlier fallback.
    saturations = sorted(n.saturation for n in view.nodes)
    median = saturations[len(saturations) // 2]
    worst = max(view.nodes, key=lambda n: (n.saturation, -n.index))
    if worst.saturation > median + 0.1:
        candidates.append(
            Candidate(
                label=f"node:{worst.index}",
                score=0.3 + 0.1 * min(worst.saturation - median, 1.0),
                evidence=(
                    f"saturation {worst.saturation:.2f} vs fleet median "
                    f"{median:.2f}"
                ),
            )
        )

    # An alarm that names a node boosts that node's existing candidacy.
    if alarm.node is not None:
        boosted: list[Candidate] = []
        label = f"node:{alarm.node}"
        for cand in candidates:
            if cand.label == label:
                cand = Candidate(
                    label=cand.label,
                    score=min(cand.score + 0.05, 1.0),
                    evidence=cand.evidence + f"; named by {alarm.detector}",
                )
            boosted.append(cand)
        candidates = boosted

    # Deduplicate by label, keeping the best score per label; rank by
    # (score desc, label) so equal scores cannot reorder run-to-run.
    best: dict[str, Candidate] = {}
    for cand in candidates:
        kept = best.get(cand.label)
        if kept is None or cand.score > kept.score:
            best[cand.label] = cand
    return tuple(
        sorted(best.values(), key=lambda c: (-c.score, c.label))
    )
