"""Incident scoring: detection latency, localization accuracy, SLO damage.

The scorecard compares three runs of the *same* fleet configuration (same
seed, same trace): a clean run (no faults), a faulted run without
remediation, and a faulted run with remediation. Because requests are
counted as *offered* at admission — before any fault can drop them — all
three runs offer an identical request stream, so per-incident SLO damage is
a plain difference of SLO-good completions over the incident's attribution
window:

    damage(mode) = good_clean(window) - good_mode(window)

computed from the engines' per-tick counter series. Each incident's
attribution window runs from its injection to its fault clearing plus a
settle margin, clipped to the next incident's start, so consecutive
incidents never share damage.

Detection latency is the first alarm inside the window (relative to
injection); localization is correct when that alarm's top-ranked candidate
matches the spec's ground-truth ``target``. ``damage_avoided`` is the
no-remediation damage minus the remediated damage — the headline number
the experiment exists to measure.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.incidents.faults import IncidentSchedule, IncidentSpec

#: Settle margin appended to each incident's fault window, in control
#: intervals: completions of requests admitted during the fault land a
#: little after it clears.
_SETTLE_TICKS = 6.0


def _good_between(ticks: list[list], t0: float, t1: float) -> int:
    """SLO-good completions accrued in ``(t0, t1]`` per a tick series."""
    times = [row[0] for row in ticks]
    i0 = bisect_right(times, t0) - 1
    i1 = bisect_right(times, t1) - 1
    g0 = ticks[i0][3] if i0 >= 0 else 0
    g1 = ticks[i1][3] if i1 >= 0 else 0
    return g1 - g0


@dataclass(frozen=True)
class IncidentScore:
    """One incident's scored outcome across the three runs."""

    kind: str
    target: str
    start_s: float
    end_s: float
    window_end_s: float
    #: First in-window alarm time minus injection time (None = undetected).
    detection_latency_s: float | None
    #: Detector that fired first (None = undetected).
    detected_by: str | None
    #: Top-ranked candidate of the first alarm (None = undetected).
    localized_as: str | None
    #: Whether that candidate matches the ground-truth target.
    localization_correct: bool
    #: SLO-good completions lost vs clean, without remediation.
    damage_norem: int
    #: Ditto with remediation enabled.
    damage_rem: int
    #: Playbooks applied inside the window (remediated run).
    playbooks: tuple[str, ...]

    @property
    def damage_avoided(self) -> int:
        return self.damage_norem - self.damage_rem

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6),
            "window_end_s": round(self.window_end_s, 6),
            "detection_latency_s": (
                round(self.detection_latency_s, 6)
                if self.detection_latency_s is not None
                else None
            ),
            "detected_by": self.detected_by,
            "localized_as": self.localized_as,
            "localization_correct": self.localization_correct,
            "damage_norem": self.damage_norem,
            "damage_rem": self.damage_rem,
            "damage_avoided": self.damage_avoided,
            "playbooks": list(self.playbooks),
        }


@dataclass(frozen=True)
class Scorecard:
    """The per-incident scores of one trial, plus run-level aggregates."""

    incidents: tuple[IncidentScore, ...]
    good_clean: int
    good_norem: int
    good_rem: int
    offered: int

    @property
    def total_damage_norem(self) -> int:
        return self.good_clean - self.good_norem

    @property
    def total_damage_rem(self) -> int:
        return self.good_clean - self.good_rem

    def as_dict(self) -> dict:
        return {
            "incidents": [s.as_dict() for s in self.incidents],
            "offered": self.offered,
            "good_clean": self.good_clean,
            "good_norem": self.good_norem,
            "good_rem": self.good_rem,
            "total_damage_norem": self.total_damage_norem,
            "total_damage_rem": self.total_damage_rem,
            "total_damage_avoided": (
                self.total_damage_norem - self.total_damage_rem
            ),
        }


def _attribution_window(
    spec: IncidentSpec,
    schedule: IncidentSchedule,
    index: int,
    interval: float,
    duration: float,
) -> tuple[float, float]:
    end = spec.end_s + _SETTLE_TICKS * interval
    if index + 1 < len(schedule.incidents):
        end = min(end, schedule.incidents[index + 1].start_s)
    return spec.start_s, min(end, duration)


def score_trial(
    schedule: IncidentSchedule,
    clean_export: dict,
    norem_export: dict,
    rem_export: dict,
    interval: float,
    duration: float,
) -> Scorecard:
    """Score one trial's three engine exports into a :class:`Scorecard`."""
    scores: list[IncidentScore] = []
    for index, spec in enumerate(schedule.incidents):
        t0, t1 = _attribution_window(
            spec, schedule, index, interval, duration
        )
        alarms = [
            a for a in rem_export["alarms"] if t0 <= a["time"] <= t1
        ]
        first = alarms[0] if alarms else None
        localized = None
        if first is not None and first["candidates"]:
            localized = first["candidates"][0]["label"]
        playbooks = tuple(
            r["playbook"]
            for r in rem_export["remediations"]
            if t0 <= r["time"] <= t1
        )
        scores.append(
            IncidentScore(
                kind=spec.kind,
                target=spec.target,
                start_s=spec.start_s,
                end_s=spec.end_s,
                window_end_s=t1,
                detection_latency_s=(
                    first["time"] - spec.start_s if first else None
                ),
                detected_by=first["detector"] if first else None,
                localized_as=localized,
                localization_correct=localized == spec.target,
                damage_norem=(
                    _good_between(clean_export["ticks"], t0, t1)
                    - _good_between(norem_export["ticks"], t0, t1)
                ),
                damage_rem=(
                    _good_between(clean_export["ticks"], t0, t1)
                    - _good_between(rem_export["ticks"], t0, t1)
                ),
                playbooks=playbooks,
            )
        )
    clean_ticks = clean_export["ticks"]
    norem_ticks = norem_export["ticks"]
    rem_ticks = rem_export["ticks"]
    return Scorecard(
        incidents=tuple(scores),
        good_clean=clean_ticks[-1][3] if clean_ticks else 0,
        good_norem=norem_ticks[-1][3] if norem_ticks else 0,
        good_rem=rem_ticks[-1][3] if rem_ticks else 0,
        offered=clean_ticks[-1][1] if clean_ticks else 0,
    )
