"""``repro.incidents``: fleet-scale fault injection, detection, response.

The incident layer sits *above* the fleet: it injects scheduled faults
into a :class:`~repro.fleet.orchestrator.FleetOrchestrator` run through
the :class:`~repro.fleet.orchestrator.FleetHooks` surface, watches the
same telemetry exports a production watchdog would, localizes root causes,
optionally auto-remediates, and scores each incident's SLO damage against
clean and no-remediation counterfactual runs. See ``docs/incidents.md``.
"""

from repro.incidents.detect import (
    Alarm,
    DetectorBank,
    DetectorConfig,
    FleetView,
    NodeView,
)
from repro.incidents.engine import IncidentEngine
from repro.incidents.faults import (
    INCIDENT_KINDS,
    IncidentSchedule,
    IncidentSpec,
    default_schedule,
    load_scenario,
    save_scenario,
)
from repro.incidents.localize import Candidate, localize
from repro.incidents.remediate import (
    ConservativeGovernor,
    RemediationAction,
    Remediator,
)
from repro.incidents.score import IncidentScore, Scorecard, score_trial

__all__ = [
    "Alarm",
    "Candidate",
    "ConservativeGovernor",
    "DetectorBank",
    "DetectorConfig",
    "FleetView",
    "INCIDENT_KINDS",
    "IncidentEngine",
    "IncidentSchedule",
    "IncidentScore",
    "IncidentSpec",
    "NodeView",
    "RemediationAction",
    "Remediator",
    "Scorecard",
    "default_schedule",
    "load_scenario",
    "localize",
    "save_scenario",
    "score_trial",
]
