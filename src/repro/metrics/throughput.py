"""Work-unit throughput metering for batch tasks and training loops."""

from __future__ import annotations

from repro.errors import MeasurementError


class ThroughputMeter:
    """Integrates a piecewise-constant unit rate into completed work.

    Batch tasks drain "work units" at a fluid rate; the meter integrates that
    rate and reports units/second over a measurement window that excludes
    warmup.
    """

    def __init__(self, warmup_until: float = 0.0) -> None:
        self._warmup_until = warmup_until
        self._units = 0.0
        self._units_at_warmup: float | None = None
        self._rate = 0.0
        self._last_sync = 0.0

    @property
    def units(self) -> float:
        """Total units completed since t=0 (as of the last sync)."""
        return self._units

    def sync(self, now: float) -> None:
        """Integrate at the current rate up to ``now``."""
        if now < self._last_sync - 1e-9:
            raise MeasurementError(f"sync backwards: {now} < {self._last_sync}")
        span = max(0.0, now - self._last_sync)
        if span > 0:
            start = self._last_sync
            if (
                self._units_at_warmup is None
                and start < self._warmup_until <= now
            ):
                # Split the span at the warmup boundary.
                self._units += self._rate * (self._warmup_until - start)
                self._units_at_warmup = self._units
                self._units += self._rate * (now - self._warmup_until)
            else:
                self._units += self._rate * span
                if self._units_at_warmup is None and now >= self._warmup_until:
                    self._units_at_warmup = self._units
        elif self._units_at_warmup is None and now >= self._warmup_until:
            self._units_at_warmup = self._units
        self._last_sync = now

    def set_rate(self, rate: float, now: float) -> None:
        """Sync then adopt a new unit rate."""
        self.sync(now)
        self._rate = max(0.0, rate)

    def add_units(self, units: float) -> None:
        """Credit discrete completions (training steps, finished jobs)."""
        self._units += units

    def throughput(self, measurement_end: float) -> float:
        """Units/second over the post-warmup window ending at ``measurement_end``."""
        self.sync(measurement_end)
        window = measurement_end - self._warmup_until
        if window <= 0:
            return 0.0
        baseline = self._units_at_warmup if self._units_at_warmup is not None else 0.0
        return (self._units - baseline) / window
