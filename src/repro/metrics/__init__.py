"""Measurement utilities: percentiles, latency/throughput recording,
slowdown aggregation and the paper's efficiency metric (Fig 14)."""

from repro.metrics.efficiency import efficiency_ratio
from repro.metrics.latency import LatencyRecorder
from repro.metrics.percentile import StreamingPercentiles
from repro.metrics.slowdown import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    normalized_performance,
    slowdown,
)
from repro.metrics.throughput import ThroughputMeter

__all__ = [
    "LatencyRecorder",
    "StreamingPercentiles",
    "ThroughputMeter",
    "arithmetic_mean",
    "efficiency_ratio",
    "geometric_mean",
    "harmonic_mean",
    "normalized_performance",
    "slowdown",
]
