"""Streaming percentile estimation.

Experiments record at most a few hundred thousand samples, so an exact
reservoir with lazy sorting is both simpler and more accurate than sketching.
A cap with uniform reservoir sampling protects pathological runs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError


class StreamingPercentiles:
    """Exact percentiles over a (capped) stream of samples."""

    def __init__(self, max_samples: int = 1_000_000, seed: int = 0) -> None:
        if max_samples <= 0:
            raise MeasurementError("max_samples must be positive")
        self._max = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def count(self) -> int:
        """Number of samples offered (including any evicted by the cap)."""
        return self._seen

    def add(self, value: float) -> None:
        """Record one sample (reservoir-sampled past the cap)."""
        self._seen += 1
        if len(self._samples) < self._max:
            self._samples.append(float(value))
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self._max:
            self._samples[slot] = float(value)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of recorded samples."""
        if not 0.0 <= q <= 100.0:
            raise MeasurementError(f"percentile {q} out of [0, 100]")
        if not self._samples:
            raise MeasurementError("no samples recorded")
        return float(np.percentile(self._samples, q))

    def mean(self) -> float:
        """Arithmetic mean of recorded samples."""
        if not self._samples:
            raise MeasurementError("no samples recorded")
        return float(np.mean(self._samples))

    def clear(self) -> None:
        """Drop all samples and reset to the freshly-constructed state.

        Re-seeds the reservoir RNG: a cleared estimator must be
        bit-identical to a fresh one even past the sampling cap, or replays
        that reuse an estimator would break run-to-run determinism.
        """
        self._samples.clear()
        self._seen = 0
        self._rng = np.random.default_rng(self._seed)
