"""The paper's runtime-efficiency metric (Section V-C, Fig 14).

Efficiency of a managed configuration is defined as the ML-task performance
*gain* over Baseline divided by the CPU-task throughput *loss* versus
Baseline — "ML performance gained per unit of CPU throughput given up";
higher is better.
"""

from __future__ import annotations

from repro.errors import MeasurementError

#: Loss denominators below this are clamped; a runtime that recovers ML
#: performance while giving up (numerically) no CPU throughput would
#: otherwise divide by zero. The paper's configurations always trade some
#: CPU throughput, so the clamp only guards degenerate simulated points.
_MIN_LOSS = 0.02


def efficiency_ratio(
    ml_perf: float,
    ml_perf_baseline: float,
    cpu_throughput: float,
    cpu_throughput_baseline: float,
) -> float:
    """ML gain over Baseline per unit of CPU throughput loss over Baseline.

    All four inputs are normalized performances (standalone = 1.0 for ML;
    Baseline single-instance = 1.0 for CPU). Negative gains clamp to zero —
    a runtime that *hurts* the ML task has zero efficiency.
    """
    for name, value in (
        ("ml_perf", ml_perf),
        ("ml_perf_baseline", ml_perf_baseline),
        ("cpu_throughput", cpu_throughput),
        ("cpu_throughput_baseline", cpu_throughput_baseline),
    ):
        if value < 0:
            raise MeasurementError(f"{name} must be non-negative, got {value}")
    gain = max(0.0, ml_perf - ml_perf_baseline)
    loss = max(_MIN_LOSS, cpu_throughput_baseline - cpu_throughput)
    return gain / loss
