"""Request-latency recording for inference workloads (RNN1 tail latency)."""

from __future__ import annotations

from repro.metrics.percentile import StreamingPercentiles


class LatencyRecorder:
    """Records per-request latencies with optional warmup exclusion."""

    def __init__(self, warmup_until: float = 0.0) -> None:
        self._warmup_until = warmup_until
        self._percentiles = StreamingPercentiles()
        self._completed = 0
        self._completed_after_warmup = 0
        self._first_completion: float | None = None
        self._last_completion: float | None = None

    @property
    def completed(self) -> int:
        """Total completions, including warmup."""
        return self._completed

    def record(self, start: float, end: float) -> None:
        """Record a request that started at ``start`` and finished at ``end``."""
        self._completed += 1
        if end < self._warmup_until:
            return
        self._completed_after_warmup += 1
        if self._first_completion is None:
            self._first_completion = end
        self._last_completion = end
        self._percentiles.add(end - start)

    def tail(self, q: float = 95.0) -> float:
        """The ``q``-th percentile latency over post-warmup requests."""
        return self._percentiles.percentile(q)

    def mean_latency(self) -> float:
        """Mean post-warmup latency."""
        return self._percentiles.mean()

    def qps(self, measurement_end: float) -> float:
        """Completion throughput over the post-warmup window."""
        window = measurement_end - self._warmup_until
        if window <= 0:
            return 0.0
        return self._completed_after_warmup / window
