"""Slowdown / normalized-performance aggregation helpers.

The paper reports ML-task averages as arithmetic means of slowdowns and
CPU-task averages as harmonic means of normalized throughputs (Fig 13
caption); these helpers keep that convention in one place.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import MeasurementError


def normalized_performance(measured: float, reference: float) -> float:
    """``measured / reference``; 1.0 means parity with the reference run."""
    if reference <= 0:
        raise MeasurementError(f"non-positive reference {reference}")
    return measured / reference


def slowdown(measured: float, reference: float) -> float:
    """``reference / measured``: 1.0 is parity, larger is worse."""
    if measured <= 0:
        raise MeasurementError(f"non-positive measurement {measured}")
    if reference <= 0:
        raise MeasurementError(f"non-positive reference {reference}")
    return reference / measured


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; raises on empty input."""
    values = list(values)
    if not values:
        raise MeasurementError("mean of empty sequence")
    return sum(values) / len(values)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise MeasurementError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise MeasurementError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise MeasurementError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise MeasurementError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
