"""Fig 15: sensitivity to remote memory interference (Section VI-A).

Adds the Remote-DRAM antagonist — same traffic as DRAM, but issued from the
remote socket against data homed on the ML task's socket — to the Fig 5
matrix. Shape targets: on the Cloud TPU platform (CNN1/CNN2) Remote-DRAM
costs an additional ~16 % and ~27 % beyond local DRAM; TPU and GPU hosts are
far less affected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.sensitivity import run_sensitivity
from repro.metrics.slowdown import arithmetic_mean

WORKLOADS = ("rnn1", "cnn1", "cnn2", "cnn3")


@dataclass(frozen=True)
class Fig15Result:
    """Normalized performance per workload under the three antagonists."""

    llc: dict[str, float]
    dram: dict[str, float]
    remote_dram: dict[str, float]

    def remote_extra_loss(self, ml: str) -> float:
        """Additional loss of Remote-DRAM beyond local DRAM."""
        return self.dram[ml] - self.remote_dram[ml]


def run_fig15(duration: float = 40.0) -> Fig15Result:
    """Run the 4x3 sensitivity matrix."""
    llc: dict[str, float] = {}
    dram: dict[str, float] = {}
    remote: dict[str, float] = {}
    for ml in WORKLOADS:
        baseline = run_sensitivity(ml, None, duration=duration)
        llc[ml] = run_sensitivity(ml, "llc", duration=duration) / baseline
        dram[ml] = run_sensitivity(ml, "dram", "H", duration=duration) / baseline
        remote[ml] = (
            run_sensitivity(
                ml, "remote-dram", "H",
                remote_data_fraction=1.0, remote_thread_fraction=0.0,
                duration=duration,
            )
            / baseline
        )
    return Fig15Result(llc=llc, dram=dram, remote_dram=remote)


def format_fig15(result: Fig15Result) -> str:
    """Render the Fig 15 bars."""
    rows = [
        [ml, result.llc[ml], result.dram[ml], result.remote_dram[ml]]
        for ml in WORKLOADS
    ]
    rows.append([
        "average",
        arithmetic_mean(result.llc.values()),
        arithmetic_mean(result.dram.values()),
        arithmetic_mean(result.remote_dram.values()),
    ])
    return format_table(
        "Fig 15: sensitivity incl. remote memory interference (normalized perf)",
        ["workload", "LLC", "DRAM", "RemoteDRAM"],
        rows,
        note="paper: RemoteDRAM costs an extra ~16% (CNN1) / ~27% (CNN2) on the "
             "Cloud TPU platform",
    )
