"""Ablation: the Section VI-D fine-grained hardware-QoS estimate.

The paper argues request-level memory prioritization would beat both
Subdomain and Kelp: ML performance at least as good as Subdomain (which
itself bounds Kelp from above by ~4 %) while CPU throughput exceeds
CoreThrottle/Kelp because the controller keeps full channel utilization.
This driver runs the Fig 13 mixes under the HW-QOS policy and compares
against KP-SD and KP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.fig13_overall import MIXES, ML_WORKLOADS
from repro.experiments.report import format_table
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean


@dataclass(frozen=True)
class HwQosResult:
    """Per-policy ML performance and CPU throughput across the mixes."""

    ml_perf: dict[str, list[float]]
    cpu_norm: dict[str, list[float]]

    def ml_average(self, policy: str) -> float:
        """Mean normalized ML performance."""
        return arithmetic_mean(self.ml_perf[policy])

    def cpu_hmean(self, policy: str) -> float:
        """Harmonic-mean normalized CPU throughput."""
        return harmonic_mean(max(v, 1e-6) for v in self.cpu_norm[policy])


def run_ablation_hwqos(duration: float = 40.0) -> HwQosResult:
    """Run the mixes under HW-QOS, KP-SD and KP (CPU normalized to BL)."""
    policies = ("KP-SD", "KP", "HW-QOS")
    ml_perf: dict[str, list[float]] = {p: [] for p in policies}
    cpu_norm: dict[str, list[float]] = {p: [] for p in policies}
    for ml in ML_WORKLOADS:
        for cpu, intensity in MIXES:
            bl = run_colocation(
                MixConfig(ml=ml, policy="BL", cpu=cpu, intensity=intensity,
                          duration=duration)
            )
            for policy in policies:
                r = run_colocation(
                    MixConfig(ml=ml, policy=policy, cpu=cpu, intensity=intensity,
                              duration=duration)
                )
                ml_perf[policy].append(r.ml_perf_norm)
                cpu_norm[policy].append(
                    r.cpu_throughput / max(bl.cpu_throughput, 1e-9)
                )
    return HwQosResult(ml_perf=ml_perf, cpu_norm=cpu_norm)


def format_ablation_hwqos(result: HwQosResult) -> str:
    """Render the comparison."""
    rows = [
        [p, result.ml_average(p), result.cpu_hmean(p)]
        for p in ("KP-SD", "KP", "HW-QOS")
    ]
    return format_table(
        "Ablation (Section VI-D): fine-grained HW QoS estimate",
        ["policy", "ml_perf_avg", "cpu_tput_hmean"],
        rows,
        note="paper's estimate: HW QoS >= Subdomain on ML and > Kelp on CPU",
    )
