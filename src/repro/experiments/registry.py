"""Registry mapping experiment ids to their drivers.

Each entry is ``(runner, formatter)``: the runner produces a result object
and the formatter renders the paper-style rows. ``run_experiment`` executes
both and returns ``(result, text)``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ExperimentError


def _fig02():
    from repro.experiments.fig02_fleet_bw import format_fig02, run_fig02

    return run_fig02, format_fig02


def _fig03():
    from repro.experiments.fig03_timeline import format_fig03, run_fig03

    return run_fig03, format_fig03


def _fig05():
    from repro.experiments.fig05_sensitivity import format_fig05, run_fig05

    return run_fig05, format_fig05


def _fig07():
    from repro.experiments.fig07_backpressure import format_fig07, run_fig07

    def run(ml: str = "cnn1", **kwargs):
        return run_fig07(ml, **kwargs)

    return run, format_fig07


def _fig09():
    from repro.experiments.fig09_cnn1_stitch import format_fig09, run_fig09

    return run_fig09, format_fig09


def _fig10():
    from repro.experiments.fig10_rnn1_cpuml import format_fig10, run_fig10

    return run_fig10, format_fig10


def _fig11():
    from repro.experiments.fig11_params_cnn1 import format_fig11, run_fig11

    return run_fig11, format_fig11


def _fig12():
    from repro.experiments.fig12_params_rnn1 import format_fig12, run_fig12

    return run_fig12, format_fig12


def _fig13():
    from repro.experiments.fig13_overall import format_fig13, run_fig13

    return run_fig13, format_fig13


def _fig14():
    from repro.experiments.fig14_efficiency import format_fig14, run_fig14

    return run_fig14, format_fig14


def _fig15():
    from repro.experiments.fig15_remote import format_fig15, run_fig15

    return run_fig15, format_fig15


def _fig16():
    from repro.experiments.fig16_remote_sweep import format_fig16, run_fig16

    def run(ml: str = "cnn1", **kwargs):
        return run_fig16(ml, **kwargs)

    return run, format_fig16


def _fleet_sim():
    from repro.experiments.fleet_sim import format_fleet_sim, run_fleet_sim

    return run_fleet_sim, format_fleet_sim


def _fleet_trace():
    from repro.experiments.fleet_trace import (
        format_fleet_trace,
        run_fleet_trace,
    )

    return run_fleet_trace, format_fleet_trace


def _fleet_serve():
    from repro.experiments.fleet_serve import (
        format_fleet_serve,
        run_fleet_serve,
    )

    return run_fleet_serve, format_fleet_serve


def _fleet_incidents():
    from repro.experiments.fleet_incidents import (
        format_fleet_incidents,
        run_fleet_incidents,
    )

    return run_fleet_incidents, format_fleet_incidents


def _table1():
    from repro.experiments.table1_workloads import format_table1, run_table1

    return run_table1, format_table1


def _ablation_hwqos():
    from repro.experiments.ablation_hwqos import (
        format_ablation_hwqos,
        run_ablation_hwqos,
    )

    return run_ablation_hwqos, format_ablation_hwqos


def _ablation_backfill():
    from repro.experiments.ablation_backfill import (
        format_ablation_backfill,
        run_ablation_backfill,
    )

    return run_ablation_backfill, format_ablation_backfill


def _ablation_mba():
    from repro.experiments.ablation_mba import (
        format_ablation_mba,
        run_ablation_mba,
    )

    return run_ablation_mba, format_ablation_mba


def _ablation_infeed_ratio():
    from repro.experiments.ablation_infeed_ratio import (
        format_ablation_infeed_ratio,
        run_ablation_infeed_ratio,
    )

    def run(ml: str = "cnn1", **kwargs):
        return run_ablation_infeed_ratio(ml, **kwargs)

    return run, format_ablation_infeed_ratio


def _ablation_churn():
    from repro.experiments.ablation_churn import (
        format_ablation_churn,
        run_ablation_churn,
    )

    def run(policy: str = "KP", **kwargs):
        return run_ablation_churn(policy, **kwargs)

    return run, format_ablation_churn


def _ablation_hwprefetch():
    from repro.experiments.ablation_hwprefetch import (
        format_ablation_hwprefetch,
        run_ablation_hwprefetch,
    )

    return run_ablation_hwprefetch, format_ablation_hwprefetch


def _ablation_tail():
    from repro.experiments.ablation_tail import (
        format_ablation_tail,
        run_ablation_tail,
    )

    return run_ablation_tail, format_ablation_tail


def _ablation_sensor_noise():
    from repro.experiments.ablation_sensor_noise import (
        format_ablation_sensor_noise,
        run_ablation_sensor_noise,
    )

    return run_ablation_sensor_noise, format_ablation_sensor_noise


def _ablation_knee():
    from repro.experiments.ablation_knee import (
        format_ablation_knee,
        run_ablation_knee,
    )

    return run_ablation_knee, format_ablation_knee


_REGISTRY: dict[str, Callable[[], tuple[Callable, Callable]]] = {
    "fig02": _fig02,
    "fig03": _fig03,
    "fig05": _fig05,
    "fig07": _fig07,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "table1": _table1,
    "fleet-sim": _fleet_sim,
    "fleet-trace": _fleet_trace,
    "fleet-serve": _fleet_serve,
    "fleet-incidents": _fleet_incidents,
    "ablation-hwqos": _ablation_hwqos,
    "ablation-backfill": _ablation_backfill,
    "ablation-mba": _ablation_mba,
    "ablation-infeed-ratio": _ablation_infeed_ratio,
    "ablation-knee": _ablation_knee,
    "ablation-churn": _ablation_churn,
    "ablation-tail": _ablation_tail,
    "ablation-hwprefetch": _ablation_hwprefetch,
    "ablation-sensor-noise": _ablation_sensor_noise,
}


#: Experiments whose runners accept a ``jobs`` argument (internal sweeps
#: that can fan out over a process pool; see :mod:`repro.parallel`).
JOBS_AWARE = {
    "fig02", "fig05", "fig16", "fleet-sim", "fleet-trace", "fleet-serve",
    "fleet-incidents", "ablation-sensor-noise",
}

#: Experiments whose runners accept an ``observer`` argument (deep
#: observability export; see :mod:`repro.obs`). Other experiments still get
#: run-level spans and a manifest from the CLI wrapper.
OBS_AWARE = {
    "fig02", "fig03", "fig11", "fig12", "fig13", "fleet-sim", "fleet-trace",
    "fleet-serve", "fleet-incidents", "ablation-sensor-noise",
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in figure order."""
    return list(_REGISTRY)


def run_experiment(exp_id: str, **kwargs: Any) -> tuple[Any, str]:
    """Run one experiment and return ``(result, formatted_text)``."""
    try:
        loader = _REGISTRY[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {experiment_ids()}"
        ) from None
    runner, formatter = loader()
    result = runner(**kwargs)
    return result, formatter(result)
