"""Fig 2: 99 %-ile memory bandwidth across a production-like fleet.

The paper's survey of one server generation over a day finds 16 % of
machines with 99 %-ile bandwidth above 70 % of peak. The driver regenerates
the CDF from the synthetic fleet model and reports the same statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.fleet.survey import FleetSurvey, fleet_bandwidth_cdf
from repro.experiments.report import format_series

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver


@dataclass(frozen=True)
class Fig02Result:
    """The CDF evaluated on a fixed grid plus the headline statistic."""

    utilization_grid: list[float]
    fraction_of_machines: list[float]
    fraction_above_70pct: float


def run_fig02(
    machines: int = 1000,
    seed: int = 42,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
) -> Fig02Result:
    """Regenerate the Fig 2 curve.

    ``jobs`` > 1 evaluates the fleet's fixed seed-blocks on a process pool;
    block seeding makes the curve independent of the worker count. With an
    enabled ``observer`` the survey publishes the per-machine p99
    distribution and the headline statistic into the metrics registry.
    """
    cdf = fleet_bandwidth_cdf(FleetSurvey(machines=machines, seed=seed), jobs=jobs)
    grid = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    fractions = [
        float(np.searchsorted(cdf.utilization, u, side="right") / machines)
        for u in grid
    ]
    result = Fig02Result(
        utilization_grid=grid,
        fraction_of_machines=fractions,
        fraction_above_70pct=cdf.fraction_above_70pct,
    )
    if observer is not None and observer.enabled:
        observer.note_seed("fleet.seed", seed)
        observer.note_config(fleet_machines=machines)
        observer.metrics.counter("fleet.machines").inc(machines)
        observer.metrics.gauge("fleet.fraction_above_70pct").set(
            cdf.fraction_above_70pct
        )
        p99_hist = observer.metrics.histogram("fleet.machine_p99_utilization")
        for value in cdf.utilization:
            p99_hist.observe(float(value))
        observer.record(
            "fleet_cdf",
            utilization_grid=grid,
            fraction_of_machines=fractions,
            fraction_above_70pct=cdf.fraction_above_70pct,
        )
    return result


def format_fig02(result: Fig02Result) -> str:
    """Render the CDF and the headline statistic."""
    return format_series(
        "Fig 2: fleet 99%-ile memory-BW CDF",
        "pct_of_peak",
        [f"{u:.0%}" for u in result.utilization_grid],
        {"machines_at_or_below": result.fraction_of_machines},
        note=(
            f"{result.fraction_above_70pct:.1%} of machines above 70% of peak "
            "(paper: 16%)"
        ),
    )
