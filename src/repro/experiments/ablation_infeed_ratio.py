"""Ablation: sensitivity vs accelerator/host interaction ratio.

Section III-B: "We also performed a sweep analysis of the ratio of
computation and communication between accelerator and host CPU for CNN1 and
CNN2. The same level of sensitivity is observed across the spectrum for both
workloads. Figure for this analysis is omitted to conserve space."

This driver reconstructs that omitted figure: the workload's host in-feed
time is scaled relative to the accelerator step, and DRAM-H sensitivity is
measured at each ratio. The paper's claim translates to: once the in-feed
has little slack (ratio near or above 1), sensitivity is uniformly high;
well below 1, the accelerator hides the interference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.node import ACCEL_SOCKET, Node
from repro.experiments.report import format_series
from repro.hw.placement import Placement
from repro.sim import Simulator
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.base import TrainingTask
from repro.workloads.ml.catalog import ml_workload

RATIOS = (0.5, 0.7, 0.9, 1.1, 1.3)


@dataclass(frozen=True)
class InfeedRatioResult:
    """Normalized performance under DRAM-H per host/accel time ratio."""

    ml: str
    ratios: tuple[float, ...]
    sensitivity: list[float]


def _run_ratio(
    ml: str, ratio: float, with_aggressor: bool, duration: float, warmup: float
) -> float:
    factory = ml_workload(ml)
    base_spec = factory.spec
    spec = replace(base_spec, host_time=ratio * base_spec.accel_step_time)
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    topo = node.machine.topology
    task = TrainingTask(
        task_id=ml,
        machine=node.machine,
        placement=Placement(
            cores=frozenset(node.accel_socket_cores()[: spec.default_cores]),
            mem_weights=topo.socket_memory_weights(ACCEL_SOCKET),
        ),
        spec=spec,
        warmup_until=warmup,
    )
    task.start()
    if with_aggressor:
        BatchTask(
            "dram",
            node.machine,
            Placement(
                cores=frozenset(node.accel_socket_cores()[spec.default_cores:]),
                mem_weights=topo.socket_memory_weights(ACCEL_SOCKET),
            ),
            cpu_workload("dram", "H"),
            warmup_until=warmup,
        ).start()
    sim.run_until(duration)
    return task.performance(duration)


def run_ablation_infeed_ratio(
    ml: str = "cnn1",
    duration: float = 30.0,
    warmup: float = 5.0,
    ratios: tuple[float, ...] = RATIOS,
) -> InfeedRatioResult:
    """Sweep the in-feed/accelerator time ratio for ``ml`` (cnn1 or cnn2)."""
    sensitivity = []
    for ratio in ratios:
        base = _run_ratio(ml, ratio, False, duration, warmup)
        contended = _run_ratio(ml, ratio, True, duration, warmup)
        sensitivity.append(contended / base)
    return InfeedRatioResult(ml=ml, ratios=tuple(ratios), sensitivity=sensitivity)


def format_ablation_infeed_ratio(result: InfeedRatioResult) -> str:
    """Render the omitted-figure sweep."""
    return format_series(
        f"Ablation ({result.ml}): DRAM-H sensitivity vs host/accel time ratio",
        "host/accel ratio",
        list(result.ratios),
        {"normalized perf under DRAM-H": result.sensitivity},
        note="paper (Section III-B): same level of sensitivity across the spectrum",
    )
