"""Table I: platform / workload characterization.

Regenerates the table's qualitative columns from the live workload specs by
measuring each standalone workload: host CPU intensity (host-phase core-time
share of the step/request) and host memory intensity (standalone bandwidth
demand), then binning to the paper's Low/Medium/High labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.workloads.ml.base import InferenceSpec, TrainingSpec
from repro.workloads.ml.catalog import ml_workload

_INTERACTION = {
    "rnn1": "Beam search",
    "cnn1": "Data in-feed",
    "cnn2": "Data in-feed",
    "cnn3": "Parameter server",
}

_PAPER = {
    "rnn1": ("TPU", "Medium", "Low"),
    "cnn1": ("Cloud TPU", "Low", "Low"),
    "cnn2": ("Cloud TPU", "High", "Medium"),
    "cnn3": ("GPU", "Low", "High"),
}


@dataclass(frozen=True)
class WorkloadCharacterization:
    """Measured traits of one accelerated workload."""

    name: str
    platform: str
    interaction: str
    cpu_core_seconds_per_unit: float
    host_bw_gbps: float
    cpu_intensity: str
    memory_intensity: str
    paper_cpu_intensity: str
    paper_memory_intensity: str


def _bin_cpu(busy_cores: float) -> str:
    if busy_cores <= 2.0:
        return "Low"
    if busy_cores <= 3.0:
        return "Medium"
    return "High"


def _bin_memory(bw: float) -> str:
    if bw < 5.0:
        return "Low"
    if bw < 9.0:
        return "Medium"
    return "High"


def characterize(name: str) -> WorkloadCharacterization:
    """Characterize one workload from its specification.

    CPU intensity is measured as time-averaged busy host cores (host-phase
    duty cycle x threads); memory intensity as the host phase's bandwidth
    demand while it runs — the character of the CPU-side task itself.
    """
    factory = ml_workload(name)
    spec = factory.spec
    if isinstance(spec, TrainingSpec):
        busy_cores = (
            spec.host_time * spec.host.threads / spec.standalone_step_time()
        )
        bw = spec.host.bw_gbps
    else:
        assert isinstance(spec, InferenceSpec)
        host_per_query = spec.iterations_per_query * spec.host_time
        accel_per_query = spec.iterations_per_query * 3e-3
        service = host_per_query + accel_per_query
        busy_cores = (
            spec.pipeline_concurrency
            * spec.host.threads
            * (host_per_query / service)
        )
        bw = spec.host.bw_gbps
    paper_platform, paper_cpu, paper_mem = _PAPER[name]
    return WorkloadCharacterization(
        name=name,
        platform=paper_platform,
        interaction=_INTERACTION[name],
        cpu_core_seconds_per_unit=busy_cores,
        host_bw_gbps=bw,
        cpu_intensity=_bin_cpu(busy_cores),
        memory_intensity=_bin_memory(bw),
        paper_cpu_intensity=paper_cpu,
        paper_memory_intensity=paper_mem,
    )


def run_table1() -> list[WorkloadCharacterization]:
    """Characterize all four workloads."""
    return [characterize(name) for name in ("rnn1", "cnn1", "cnn2", "cnn3")]


def format_table1(rows: list[WorkloadCharacterization]) -> str:
    """Render Table I with measured and paper labels side by side."""
    table_rows = [
        [
            r.name, r.platform, r.interaction,
            f"{r.host_bw_gbps:.1f}",
            f"{r.cpu_intensity}/{r.paper_cpu_intensity}",
            f"{r.memory_intensity}/{r.paper_memory_intensity}",
        ]
        for r in rows
    ]
    return format_table(
        "Table I: accelerated ML platforms and workloads (measured/paper)",
        ["workload", "platform", "interaction", "host GB/s",
         "CPU intensity", "memory intensity"],
        table_rows,
        note="intensity bins derived from the live specs; paper labels after '/'",
    )
