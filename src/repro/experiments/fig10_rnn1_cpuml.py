"""Fig 10: the RNN1 + CPUML memory-pressure sweep (Section V-B, case 2).

A gentler mix: RNN1 is less bandwidth-sensitive and CPUML less aggressive.
CPUML's thread count sweeps 2-16 under all four configurations. Fig 10a
plots RNN1 QPS and Fig 10b its 95 %-ile tail latency, both normalized to
standalone; Fig 10c plots CPUML throughput normalized to Baseline with two
threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_series
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean

POLICIES = ("BL", "CT", "KP-SD", "KP")
THREADS = (2, 4, 6, 8, 10, 12, 14, 16)


@dataclass(frozen=True)
class Fig10Result:
    """Per-policy series over the thread sweep."""

    threads: tuple[int, ...]
    qps: dict[str, list[float]]
    tail: dict[str, list[float]]
    cpu_throughput: dict[str, list[float]]

    def qps_average(self, policy: str) -> float:
        """Mean normalized QPS over the sweep."""
        return arithmetic_mean(self.qps[policy])

    def tail_average(self, policy: str) -> float:
        """Mean normalized tail latency over the sweep."""
        return arithmetic_mean(self.tail[policy])

    def cpu_harmonic_mean(self, policy: str) -> float:
        """Harmonic-mean CPUML throughput over the sweep."""
        return harmonic_mean(self.cpu_throughput[policy])


def run_fig10(
    threads: tuple[int, ...] = THREADS,
    policies: tuple[str, ...] = POLICIES,
    duration: float = 40.0,
) -> Fig10Result:
    """Run the sweep; CPUML throughput normalized to BL @ 2 threads."""
    qps: dict[str, list[float]] = {p: [] for p in policies}
    tail: dict[str, list[float]] = {p: [] for p in policies}
    cpu_raw: dict[str, list[float]] = {p: [] for p in policies}
    for policy in policies:
        for n in threads:
            result = run_colocation(
                MixConfig(ml="rnn1", policy=policy, cpu="cpuml", intensity=n,
                          duration=duration)
            )
            qps[policy].append(result.ml_perf_norm)
            tail[policy].append(result.ml_tail_norm or 0.0)
            cpu_raw[policy].append(result.cpu_throughput)
    reference = cpu_raw.get("BL", [1.0])[0] or 1.0
    cpu_norm = {
        p: [value / reference for value in values] for p, values in cpu_raw.items()
    }
    return Fig10Result(
        threads=tuple(threads), qps=qps, tail=tail, cpu_throughput=cpu_norm
    )


def format_fig10(result: Fig10Result) -> str:
    """Render Fig 10a-c."""
    a = format_series(
        "Fig 10a: RNN1 QPS (normalized to standalone)",
        "cpuml_threads", list(result.threads), result.qps,
        note="paper averages: CT -9%, KP-SD ~0%, KP -5%",
    )
    b = format_series(
        "Fig 10b: RNN1 p95 tail latency (normalized to standalone)",
        "cpuml_threads", list(result.threads), result.tail,
        note="paper averages: CT +13%, KP +8%",
    )
    c = format_series(
        "Fig 10c: CPUML throughput (normalized to BL @ 2 threads)",
        "cpuml_threads", list(result.threads), result.cpu_throughput,
        note="paper averages: CT -5%, KP-SD -33%, KP -13%",
    )
    return "\n\n".join([a, b, c])
