"""Fig 16: Cloud TPU platform remote-memory sweep (Section VI-A).

For CNN1 and CNN2, sweep the percentage of the antagonist's dataset homed on
the ML task's socket (x-axis) against the percentage of its threads running
there (series). Slowdown (1 / normalized performance) grows as more traffic
crosses the socket boundary; remote traffic hurts more than the equivalent
local interference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import run_points
from repro.experiments.report import format_series
from repro.experiments.sensitivity import run_sensitivity

DATA_FRACTIONS = (0.0, 0.25, 0.5, 1.0)
THREAD_FRACTIONS = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class Fig16Result:
    """Slowdown grid for one workload: (thread_fraction -> series over data)."""

    ml: str
    data_fractions: tuple[float, ...]
    slowdown: dict[float, list[float]]

    def max_slowdown(self) -> float:
        """Worst slowdown anywhere in the grid."""
        return max(max(series) for series in self.slowdown.values())


def _fig16_point(point: tuple[str, float | None, float | None, float]) -> float:
    """One locality-sweep run (module-level: runs inside pool workers).

    A ``None`` fraction pair marks the no-antagonist baseline point.
    """
    ml, df, tf, duration = point
    if df is None:
        return run_sensitivity(ml, None, duration=duration)
    return run_sensitivity(
        ml, "remote-dram", "H",
        remote_data_fraction=df, remote_thread_fraction=tf,
        duration=duration,
    )


def run_fig16(
    ml: str,
    duration: float = 40.0,
    data_fractions: tuple[float, ...] = DATA_FRACTIONS,
    thread_fractions: tuple[float, ...] = THREAD_FRACTIONS,
    jobs: int | None = None,
) -> Fig16Result:
    """Run the locality sweep for ``ml`` (cnn1 or cnn2).

    The baseline plus the full (threads x data) grid are independent
    simulations; ``jobs`` > 1 runs them on a process pool with identical
    results to the serial sweep.
    """
    points: list[tuple[str, float | None, float | None, float]] = [
        (ml, None, None, duration)
    ]
    for tf in thread_fractions:
        for df in data_fractions:
            points.append((ml, df, tf, duration))
    raw = run_points(_fig16_point, points, jobs=jobs)
    baseline = raw[0]
    grid: dict[float, list[float]] = {}
    cursor = 1
    for tf in thread_fractions:
        grid[tf] = [baseline / perf for perf in raw[cursor : cursor + len(data_fractions)]]
        cursor += len(data_fractions)
    return Fig16Result(
        ml=ml, data_fractions=tuple(data_fractions), slowdown=grid
    )


def format_fig16(result: Fig16Result) -> str:
    """Render the slowdown grid."""
    return format_series(
        f"Fig 16 ({result.ml}): slowdown vs antagonist data locality",
        "pct_data_on_local_socket",
        [f"{f:.0%}" for f in result.data_fractions],
        {
            f"{tf:.0%} local threads": series
            for tf, series in result.slowdown.items()
        },
        note="paper: remote traffic causes higher slowdown than local "
             "interference, up to ~2.5-3x on the Cloud TPU platform",
    )
