"""Experiment drivers: one module per paper figure/table.

Each driver exposes a ``run_*`` function returning a plain-dataclass result
and a ``format_*`` helper printing the same rows/series the paper reports.
The registry in :mod:`repro.experiments.registry` maps experiment ids
("fig05", "fig13", ...) to their drivers.
"""

from repro.experiments.common import (
    ColocationResult,
    MixConfig,
    run_colocation,
    standalone_performance,
)
from repro.experiments.registry import experiment_ids, run_experiment

__all__ = [
    "ColocationResult",
    "MixConfig",
    "experiment_ids",
    "run_colocation",
    "run_experiment",
    "standalone_performance",
]
