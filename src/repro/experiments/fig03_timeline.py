"""Fig 3: RNN1 iteration timeline, standalone vs under a DRAM aggressor.

Requests are generated serially (closed loop, one at a time) to keep the
trace legible, exactly as the paper does for this illustrative figure. The
driver reports per-phase times for both configurations; the headline check
is that CPU phases stretch on the order of +50 % while communication and
TPU phases are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.node import ACCEL_SOCKET, Node
from repro.experiments.report import format_table
from repro.hw.placement import Placement
from repro.sim import Simulator
from repro.sim.tracing import TimelineTracer, TraceInterval
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.loadgen import SerialGenerator
from repro.workloads.ml.catalog import ml_workload

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver


@dataclass(frozen=True)
class PhaseTimes:
    """Total per-phase time over the traced window, seconds."""

    cpu: float
    communication: float
    tpu: float


@dataclass(frozen=True)
class Fig03Result:
    """Phase breakdown for both configurations plus the raw intervals."""

    standalone: PhaseTimes
    colocation: PhaseTimes
    cpu_stretch: float
    tpu_stretch: float
    standalone_intervals: list[TraceInterval]
    colocation_intervals: list[TraceInterval]


def _trace_run(with_aggressor: bool, requests: int = 40) -> tuple[PhaseTimes, list]:
    factory = ml_workload("rnn1")
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    topo = node.machine.topology
    tracer = TimelineTracer()
    placement = Placement(
        cores=frozenset(node.accel_socket_cores()[: factory.default_cores()]),
        mem_weights=topo.socket_memory_weights(ACCEL_SOCKET),
    )
    instance = factory.build(
        node.machine, placement, warmup_until=0.0, tracer=tracer, load_fraction=0.0
    )
    instance.task.start()  # no generator: we drive serially
    if with_aggressor:
        BatchTask(
            task_id="dram",
            machine=node.machine,
            placement=Placement(
                cores=frozenset(node.accel_socket_cores()[factory.default_cores():]),
                mem_weights=topo.socket_memory_weights(ACCEL_SOCKET),
            ),
            profile=cpu_workload("dram", "H"),
        ).start()
    generator = SerialGenerator(instance.task, total_requests=requests)
    generator.start()
    sim.run_until(60.0)
    # Close any phase still in flight at simulation end: an open interval
    # would otherwise be dropped, truncating the Fig 3 timeline.
    tracer.flush(sim.now)
    times = PhaseTimes(
        cpu=tracer.total_time("rnn1", "cpu"),
        communication=tracer.total_time("rnn1", "communication"),
        tpu=tracer.total_time("rnn1", "tpu"),
    )
    return times, tracer.intervals


def run_fig03(
    requests: int = 40, observer: "RunObserver | None" = None
) -> Fig03Result:
    """Trace the serial-request timeline with and without the aggressor."""
    standalone, intervals_s = _trace_run(False, requests)
    colocation, intervals_c = _trace_run(True, requests)
    result = Fig03Result(
        standalone=standalone,
        colocation=colocation,
        cpu_stretch=colocation.cpu / standalone.cpu if standalone.cpu else 0.0,
        tpu_stretch=colocation.tpu / standalone.tpu if standalone.tpu else 0.0,
        standalone_intervals=intervals_s,
        colocation_intervals=intervals_c,
    )
    if observer is not None and observer.enabled:
        observer.trace.add_intervals("fig03:standalone", intervals_s)
        observer.trace.add_intervals("fig03:colocation", intervals_c)
        for config, times in (
            ("standalone", standalone), ("colocation", colocation)
        ):
            observer.record(
                "fig03_phase_times",
                config=config,
                cpu_s=times.cpu,
                communication_s=times.communication,
                tpu_s=times.tpu,
            )
        observer.metrics.gauge("fig03.cpu_stretch").set(result.cpu_stretch)
        observer.metrics.gauge("fig03.tpu_stretch").set(result.tpu_stretch)
        observer.note_config(fig03_requests=requests)
    return result


def format_fig03(result: Fig03Result) -> str:
    """Render per-phase times (ms) for both configurations."""
    rows = [
        ["standalone", result.standalone.cpu * 1e3,
         result.standalone.communication * 1e3, result.standalone.tpu * 1e3],
        ["colocation", result.colocation.cpu * 1e3,
         result.colocation.communication * 1e3, result.colocation.tpu * 1e3],
    ]
    return format_table(
        "Fig 3: RNN1 execution timeline (total ms per phase over trace)",
        ["config", "cpu_ms", "communication_ms", "tpu_ms"],
        rows,
        note=(
            f"CPU phase stretch: {result.cpu_stretch:.2f}x (paper: up to 1.51x); "
            f"TPU phase stretch: {result.tpu_stretch:.2f}x (paper: ~1.0x)"
        ),
    )
