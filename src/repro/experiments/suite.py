"""Run every registered experiment and assemble one report.

``python -m repro report`` (or :func:`run_suite`) executes the full
per-figure registry at configurable scale and writes a single markdown/text
document — the regenerated evaluation section of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

from repro.experiments.parallel import maybe_profiled, resolve_jobs, run_points
from repro.experiments.registry import OBS_AWARE, experiment_ids, run_experiment

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: Experiments taking a workload argument, run once per listed workload.
_PER_WORKLOAD: dict[str, tuple[str, ...]] = {
    "fig07": ("rnn1", "cnn1", "cnn2"),
    "fig16": ("cnn1", "cnn2"),
}

#: Experiments that do not accept a duration override.
_NO_DURATION = {"fig02", "table1", "ablation-churn", "ablation-hwprefetch"}


@dataclass(frozen=True)
class SuiteEntry:
    """One executed experiment in the report."""

    exp_id: str
    text: str
    seconds: float


def _suite_point(
    point: tuple[str, str | None, float],
    observer: "RunObserver | None" = None,
) -> SuiteEntry:
    """Evaluate one suite entry (module-level: runs inside pool workers)."""
    exp_id, ml, duration = point
    kwargs: dict = {}
    if exp_id not in _NO_DURATION:
        kwargs["duration"] = duration
    if ml is not None:
        kwargs["ml"] = ml
    if observer is not None and exp_id in OBS_AWARE:
        kwargs["observer"] = observer
    name = exp_id if ml is None else f"{exp_id}:{ml}"
    started = time.perf_counter()
    # REPRO_PROFILE=1 dumps one <experiment>.prof per entry (and forces the
    # suite serial, so the profile sees the real work in-process).
    with maybe_profiled(name.replace(":", "_")):
        _, text = run_experiment(exp_id, **kwargs)
    return SuiteEntry(
        exp_id=name,
        text=text,
        seconds=time.perf_counter() - started,
    )


def suite_points(
    experiments: list[str] | None = None,
    duration: float = 30.0,
) -> list[tuple[str, str | None, float]]:
    """Expand the registry (or a subset) into independent suite points."""
    wanted = experiments if experiments is not None else experiment_ids()
    return [
        (exp_id, ml, duration)
        for exp_id in wanted
        for ml in _PER_WORKLOAD.get(exp_id, (None,))
    ]


def run_suite(
    experiments: list[str] | None = None,
    duration: float = 30.0,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
) -> list[SuiteEntry]:
    """Execute the registry (or a subset) and collect formatted outputs.

    ``jobs`` > 1 fans the independent experiment points out over a process
    pool (see :mod:`repro.experiments.parallel`); results are identical to
    the serial run and come back in registry order.

    An enabled ``observer`` records per-experiment wall-clock spans and
    roll-up metrics. When running serially it is additionally threaded into
    the obs-aware experiments (``OBS_AWARE``), exporting their full tick/
    telemetry streams; parallel workers cannot share the parent's observer,
    so ``jobs`` > 1 keeps the suite-level view only.
    """
    points = suite_points(experiments, duration)
    observing = observer is not None and observer.enabled
    fn = _suite_point
    if observing and resolve_jobs(jobs) == 1:
        fn = partial(_suite_point, observer=observer)
    entries = run_points(fn, points, jobs=jobs)
    if observing:
        observer.note_config(
            suite_duration=duration,
            suite_jobs=resolve_jobs(jobs),
            suite_experiments=[e.exp_id for e in entries],
        )
        offset = 0.0
        for entry in entries:
            observer.add_span(
                "suite", "experiments", entry.exp_id, offset, entry.seconds,
                args={"wall_s": round(entry.seconds, 3)},
            )
            offset += entry.seconds
            observer.record(
                "suite_entry", exp_id=entry.exp_id,
                wall_s=round(entry.seconds, 3), chars=len(entry.text),
            )
            observer.metrics.histogram("suite.experiment_seconds").observe(
                entry.seconds
            )
        observer.metrics.counter("suite.experiments").inc(len(entries))
    return entries


def format_suite(entries: list[SuiteEntry]) -> str:
    """Assemble the suite report."""
    total = sum(e.seconds for e in entries)
    lines = [
        "# Kelp reproduction — full experiment report",
        "",
        f"{len(entries)} experiment runs, {total:.0f}s wall clock.",
        "",
    ]
    for entry in entries:
        lines.append(f"## {entry.exp_id}  ({entry.seconds:.1f}s)")
        lines.append("")
        lines.append("```")
        lines.append(entry.text)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
