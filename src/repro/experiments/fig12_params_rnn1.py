"""Fig 12: runtime parameters for the RNN1 + CPUML mixes.

Same measurement as Fig 11, on the gentler mix: the paper's observation is
that this workload exerts less bandwidth stress, so all mechanisms throttle
less — in particular vanilla Subdomain achieves isolation without disabling
any prefetchers at low thread counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments.fig11_params_cnn1 import (
    ParamSweepResult,
    format_params,
    run_param_sweep,
)

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver


def run_fig12(
    duration: float = 40.0, observer: "RunObserver | None" = None
) -> ParamSweepResult:
    """The RNN1 + CPUML parameter sweep (Fig 12a-c)."""
    return run_param_sweep(
        "rnn1", "cpuml", (2, 4, 6, 8, 10, 12), duration, observer=observer
    )


def format_fig12(result: ParamSweepResult) -> str:
    """Render Fig 12."""
    return format_params(result, "Fig 12")
