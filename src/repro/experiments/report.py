"""Plain-text rendering of experiment results.

Every driver prints its rows/series through these helpers so benchmark
output is uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render an ASCII table with a title and an optional footnote."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs: Sequence[object],
                  series: dict[str, Sequence[float]], note: str = "") -> str:
    """Render one x-axis with several named series as a table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(title, headers, rows, note=note)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
