"""Ablation: what backfilling alone buys (Section IV-C).

KP-SD and KP differ exactly by backfilling + the Algorithm 1 hi-subdomain
throttle. Running both over the Fig 9/10 sweeps isolates that delta: the
paper credits backfilling with ~17 % higher system efficiency at a ~4 % ML
performance cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_table
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean

SWEEPS: tuple[tuple[str, str, tuple[int, ...]], ...] = (
    ("cnn1", "stitch", (2, 4, 6)),
    ("rnn1", "cpuml", (8, 12, 16)),
)


@dataclass(frozen=True)
class BackfillAblationResult:
    """KP-SD vs KP deltas per sweep."""

    ml_avg: dict[tuple[str, str], dict[str, float]]
    cpu_hmean: dict[tuple[str, str], dict[str, float]]


def run_ablation_backfill(duration: float = 40.0) -> BackfillAblationResult:
    """Run KP-SD and KP over both sweeps."""
    ml_avg: dict[tuple[str, str], dict[str, float]] = {}
    cpu_hmean: dict[tuple[str, str], dict[str, float]] = {}
    for ml, cpu, intensities in SWEEPS:
        ml_avg[(ml, cpu)] = {}
        cpu_hmean[(ml, cpu)] = {}
        for policy in ("KP-SD", "KP"):
            perfs, cpus = [], []
            for n in intensities:
                r = run_colocation(
                    MixConfig(ml=ml, policy=policy, cpu=cpu, intensity=n,
                              duration=duration)
                )
                bl = run_colocation(
                    MixConfig(ml=ml, policy="BL", cpu=cpu, intensity=n,
                              duration=duration)
                )
                perfs.append(r.ml_perf_norm)
                cpus.append(r.cpu_throughput / max(bl.cpu_throughput, 1e-9))
            ml_avg[(ml, cpu)][policy] = arithmetic_mean(perfs)
            cpu_hmean[(ml, cpu)][policy] = harmonic_mean(
                max(v, 1e-6) for v in cpus
            )
    return BackfillAblationResult(ml_avg=ml_avg, cpu_hmean=cpu_hmean)


def format_ablation_backfill(result: BackfillAblationResult) -> str:
    """Render the KP-SD vs KP deltas."""
    rows = []
    for key in result.ml_avg:
        ml, cpu = key
        rows.append([
            f"{ml}+{cpu}",
            result.ml_avg[key]["KP-SD"], result.cpu_hmean[key]["KP-SD"],
            result.ml_avg[key]["KP"], result.cpu_hmean[key]["KP"],
            result.cpu_hmean[key]["KP"] / max(result.cpu_hmean[key]["KP-SD"], 1e-9),
        ])
    return format_table(
        "Ablation: backfilling (KP-SD -> KP)",
        ["sweep", "KP-SD ml", "KP-SD cpu", "KP ml", "KP cpu", "cpu gain"],
        rows,
        note="paper: backfilling recovers ~17% system efficiency for ~4% ML cost",
    )
