"""Ablation: MBA request-rate throttling vs CoreThrottle vs Kelp.

Section VI-D notes that Intel's Memory Bandwidth Allocation could
de-prioritize memory-intensive jobs, but its rate controller "appears to
throttle traffic from the core to the interconnect, last-level cache, and
memory controllers" — so the low-priority tier pays an LLC-bandwidth tax on
top of the DRAM throttle. This driver quantifies the trade on the paper's
heavy mix: MBA should protect the ML task roughly as well as CoreThrottle
while extracting *less* CPU throughput per unit of protection, and both
should trail Kelp.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_table
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean

POLICIES = ("CT", "MBA", "KP")
INSTANCES = (2, 4, 6)


@dataclass(frozen=True)
class MbaAblationResult:
    """Per-policy averages over the CNN1 + Stitch sweep."""

    ml_avg: dict[str, float]
    cpu_hmean: dict[str, float]
    #: Final MB% throttle the MBA controller settled on, per instance count.
    mba_percent: list[int]


def run_ablation_mba(duration: float = 40.0) -> MbaAblationResult:
    """Run CNN1 + Stitch under CT, MBA and KP (CPU normalized to BL)."""
    ml: dict[str, list[float]] = {p: [] for p in POLICIES}
    cpu: dict[str, list[float]] = {p: [] for p in POLICIES}
    mba_percent: list[int] = []
    for n in INSTANCES:
        bl = run_colocation(
            MixConfig(ml="cnn1", policy="BL", cpu="stitch", intensity=n,
                      duration=duration)
        )
        for policy in POLICIES:
            r = run_colocation(
                MixConfig(ml="cnn1", policy=policy, cpu="stitch", intensity=n,
                          duration=duration)
            )
            ml[policy].append(r.ml_perf_norm)
            cpu[policy].append(r.cpu_throughput / max(bl.cpu_throughput, 1e-9))
            if policy == "MBA" and r.params:
                mba_percent.append(r.params[-1].lo_prefetchers)
    return MbaAblationResult(
        ml_avg={p: arithmetic_mean(ml[p]) for p in POLICIES},
        cpu_hmean={p: harmonic_mean(max(v, 1e-6) for v in cpu[p]) for p in POLICIES},
        mba_percent=mba_percent,
    )


def format_ablation_mba(result: MbaAblationResult) -> str:
    """Render the comparison."""
    rows = [
        [p, result.ml_avg[p], result.cpu_hmean[p]] for p in POLICIES
    ]
    return format_table(
        "Ablation (Section VI-D): MBA rate throttling vs CT vs Kelp",
        ["policy", "ml_perf_avg", "cpu_tput_hmean"],
        rows,
        note=(
            "MBA protects like CT but its rate controller also throttles "
            f"the core-to-LLC path (final MB%: {result.mba_percent}); "
            "both trail Kelp"
        ),
    )
