"""Ablation: service-level tail amplification vs shard fan-out (§II-D).

Composes three measured quantities into the paper's motivating argument:

1. **Fig 2**: ~16 % of fleet machines run bandwidth-saturated;
2. **local stretch**: the measured PS-update slowdown on a saturated host
   (from the CNN3 sensitivity run), with and without Kelp;
3. **lock-step amplification**: the probability that a K-shard step hits at
   least one saturated machine grows as 1-(1-p)^K.

The result: at realistic fan-outs the *expected* service slowdown
approaches the full interfered stretch even though only a sixth of machines
are saturated — unless a runtime like Kelp caps the per-node stretch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.survey import fleet_bandwidth_cdf
from repro.fleet.validate import TailAmplificationModel
from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_series

SHARD_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class TailAmplificationResult:
    """Expected service slowdown by fan-out, managed vs unmanaged."""

    interference_probability: float
    bl_stretch: float
    kp_stretch: float
    shard_counts: tuple[int, ...]
    bl_slowdown: list[float]
    kp_slowdown: list[float]
    any_interfered: list[float]


def run_ablation_tail(
    duration: float = 30.0, shard_counts: tuple[int, ...] = SHARD_COUNTS
) -> TailAmplificationResult:
    """Measure per-node stretches, then amplify across the fan-out."""
    p = fleet_bandwidth_cdf().fraction_above_70pct
    bl = run_colocation(
        MixConfig(ml="cnn3", policy="BL", cpu="dram", intensity="H",
                  duration=duration)
    )
    kp = run_colocation(
        MixConfig(ml="cnn3", policy="KP", cpu="dram", intensity="H",
                  duration=duration)
    )
    bl_stretch = max(1.0, 1.0 / max(bl.ml_perf_norm, 1e-6))
    kp_stretch = max(1.0, 1.0 / max(kp.ml_perf_norm, 1e-6))
    bl_model = TailAmplificationModel(p, bl_stretch)
    kp_model = TailAmplificationModel(p, kp_stretch)
    return TailAmplificationResult(
        interference_probability=p,
        bl_stretch=bl_stretch,
        kp_stretch=kp_stretch,
        shard_counts=tuple(shard_counts),
        bl_slowdown=[bl_model.expected_slowdown(k) for k in shard_counts],
        kp_slowdown=[kp_model.expected_slowdown(k) for k in shard_counts],
        any_interfered=[bl_model.probability_any_interfered(k) for k in shard_counts],
    )


def format_ablation_tail(result: TailAmplificationResult) -> str:
    """Render the fan-out amplification curves."""
    return format_series(
        "Ablation (§II-D): service-level tail amplification vs PS fan-out",
        "shards",
        list(result.shard_counts),
        {
            "P(any shard interfered)": result.any_interfered,
            "BL expected slowdown": result.bl_slowdown,
            "KP expected slowdown": result.kp_slowdown,
        },
        note=(
            f"p={result.interference_probability:.2f} saturated machines "
            f"(Fig 2); per-node stretch BL={result.bl_stretch:.2f}x, "
            f"KP={result.kp_stretch:.2f}x"
        ),
    )
