"""Fig 14: runtime efficiency — ML gain per unit of CPU throughput loss.

For each mix and each managed configuration, efficiency is the ML task's
performance gain over Baseline divided by the CPU tasks' throughput loss
versus Baseline (Section V-C). Shape targets: Subdomain lowest overall
(fragmentation); Kelp ~17 % above CoreThrottle and ~37 % above Subdomain on
average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig13_overall import Fig13Result, run_fig13
from repro.experiments.report import format_table
from repro.metrics.efficiency import efficiency_ratio
from repro.metrics.slowdown import arithmetic_mean

MANAGED = ("CT", "KP-SD", "KP")


@dataclass(frozen=True)
class Fig14Result:
    """Per-mix and average efficiency for the managed configurations."""

    efficiency: dict[tuple[str, str], dict[str, float]]

    def average(self, policy: str) -> float:
        """Mean efficiency across mixes."""
        return arithmetic_mean(v[policy] for v in self.efficiency.values())


def efficiency_from_fig13(fig13: Fig13Result) -> Fig14Result:
    """Derive Fig 14 from an existing Fig 13 run."""
    mixes = sorted({(c.ml, c.cpu) for c in fig13.cells})
    table: dict[tuple[str, str], dict[str, float]] = {}
    for ml, cpu in mixes:
        bl = fig13.cell(ml, cpu, "BL")
        bl_ml_perf = 1.0 / bl.ml_slowdown
        row: dict[str, float] = {}
        for policy in MANAGED:
            cell = fig13.cell(ml, cpu, policy)
            row[policy] = efficiency_ratio(
                ml_perf=1.0 / cell.ml_slowdown,
                ml_perf_baseline=bl_ml_perf,
                cpu_throughput=cell.cpu_norm_throughput,
                cpu_throughput_baseline=bl.cpu_norm_throughput,
            )
        table[(ml, cpu)] = row
    return Fig14Result(efficiency=table)


def run_fig14(duration: float = 40.0) -> Fig14Result:
    """Run the Fig 13 matrix and derive efficiency."""
    return efficiency_from_fig13(run_fig13(duration=duration))


def format_fig14(result: Fig14Result) -> str:
    """Render per-mix efficiency plus averages."""
    rows = []
    for (ml, cpu), values in sorted(result.efficiency.items()):
        rows.append([f"{ml}+{cpu}"] + [values[p] for p in MANAGED])
    rows.append(["average"] + [result.average(p) for p in MANAGED])
    return format_table(
        "Fig 14: ML gain / CPU loss (higher is better)",
        ["mix"] + list(MANAGED),
        rows,
        note="paper: KP +17% vs CT, +37% vs KP-SD on average; KP-SD lowest",
    )
