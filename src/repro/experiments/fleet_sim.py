"""The ``fleet-sim`` experiment family: cluster-scale QoS evaluation.

One invocation runs ``trials`` independent fleet simulations (same shape,
different seeds) and aggregates per-tenant SLO outcomes and fleet-level
statistics. Trials are independent points in the :mod:`repro.parallel`
sense, so ``jobs > 1`` fans them out over a process pool with bit-identical
results: each trial's :class:`~repro.fleet.config.FleetConfig` carries its
own derived seed, and the fleet orchestrator draws every random stream from
that seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.errors import ExperimentError
from repro.fleet.config import FleetConfig, default_tenants, uniform_batch_jobs
from repro.fleet.orchestrator import FleetResult, run_fleet
from repro.parallel import point_seed, run_points

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: Telemetry rows exported to the observer (first trial only, capped).
_MAX_TELEMETRY_ROWS = 4096
#: Controller/actuation rows exported to the observer (first trial only).
_MAX_CONTROLLER_ROWS = 4096

#: Default aggregate per-node load of the canonical two-tenant mix.
_DEFAULT_TOTAL_LOAD = sum(t.load_fraction for t in default_tenants())


@dataclass(frozen=True)
class TenantSummary:
    """One tenant's outcome aggregated over the trials."""

    name: str
    slo_p99_ms: float
    offered: int
    completed: int
    attainment: float
    goodput_qps: float
    p99_ms: float | None
    #: True only when the tenant's p99 met its SLO in *every* trial.
    slo_met_all_trials: bool


@dataclass(frozen=True)
class FleetSimResult:
    """Aggregated outcome of one fleet-sim invocation."""

    nodes: int
    policy: str
    routing: str
    ml: str
    trials: int
    tenant_rows: tuple[TenantSummary, ...]
    fraction_saturated: float
    serving_yield: float
    batch_yield: float
    efficiency: float
    batch_evictions: int
    #: One JSON-clean summary per trial, in trial order — the artifact the
    #: determinism tests compare across ``jobs`` values.
    summaries: tuple[dict, ...]
    #: The full per-trial results (validation, benchmarks, observability).
    results: tuple[FleetResult, ...]


def _run_trial(config: FleetConfig) -> FleetResult:
    """Module-level trial evaluator (picklable for the process pool)."""
    return run_fleet(config)


def run_fleet_sim(
    nodes: int = 8,
    policy: str = "KP",
    routing: str = "interference-aware",
    ml: str = "rnn1",
    load: float | None = None,
    duration: float = 8.0,
    warmup: float = 2.0,
    interval: float = 0.5,
    batch_jobs: int = 0,
    batch_workload: str = "stream",
    batch_intensity: int | str = 8,
    batch_eviction: bool = True,
    trials: int = 1,
    seed: int = 0,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
    sensors: SensorConfig | None = None,
    faults: ActuationFaultConfig | None = None,
) -> FleetSimResult:
    """Run the fleet simulation family and aggregate over trials.

    ``load`` is the aggregate per-node offered load across the two default
    tenants (their 70/30-ish split is preserved); ``None`` keeps the
    canonical 0.50. ``jobs`` parallelizes trials; the per-trial seed chain
    (:func:`repro.parallel.point_seed`) makes the output independent of the
    worker count.
    """
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    if duration <= warmup:
        # Keep short suite/report invocations (e.g. ``--duration 1``) valid:
        # scale the warmup with the horizon instead of rejecting the run.
        warmup = duration / 4.0
    base = FleetConfig(
        nodes=nodes,
        policy=policy,
        routing=routing,
        ml=ml,
        batch_jobs=uniform_batch_jobs(
            batch_jobs, workload=batch_workload, intensity=batch_intensity
        ),
        batch_eviction=batch_eviction,
        duration=duration,
        warmup=warmup,
        interval=interval,
        seed=seed,
        sensors=sensors,
        faults=faults,
    )
    if load is not None:
        base = base.scaled_load(load / _DEFAULT_TOTAL_LOAD)
    from dataclasses import replace

    configs = [
        replace(base, seed=point_seed(seed, trial)) for trial in range(trials)
    ]
    results: list[FleetResult] = run_points(
        _run_trial, configs, jobs=jobs, base_seed=seed
    )

    tenant_rows = _aggregate_tenants(results)
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    result = FleetSimResult(
        nodes=nodes,
        policy=base.policy,
        routing=base.routing,
        ml=base.ml,
        trials=trials,
        tenant_rows=tenant_rows,
        fraction_saturated=mean([r.fraction_saturated for r in results]),
        serving_yield=mean([r.serving_yield for r in results]),
        batch_yield=mean([r.batch_yield for r in results]),
        efficiency=mean([r.efficiency for r in results]),
        batch_evictions=sum(r.batch_evictions for r in results),
        summaries=tuple(r.summary() for r in results),
        results=tuple(results),
    )
    _observe(result, observer)
    return result


def _aggregate_tenants(results: list[FleetResult]) -> tuple[TenantSummary, ...]:
    rows = []
    for index in range(len(results[0].tenants)):
        slices = [r.tenants[index] for r in results]
        p99s = [t.p99_s for t in slices if t.p99_s is not None]
        offered = sum(t.offered for t in slices)
        good = sum(
            round(t.attainment * t.offered) for t in slices
        )
        rows.append(
            TenantSummary(
                name=slices[0].name,
                slo_p99_ms=slices[0].slo_p99_s * 1e3,
                offered=offered,
                completed=sum(t.completed for t in slices),
                attainment=good / offered if offered else 0.0,
                goodput_qps=sum(t.goodput_qps for t in slices) / len(slices),
                p99_ms=max(p99s) * 1e3 if p99s else None,
                slo_met_all_trials=all(t.slo_met for t in slices),
            )
        )
    return tuple(rows)


def _observe(result: FleetSimResult, observer: "RunObserver | None") -> None:
    if observer is None or not observer.enabled:
        return
    observer.note_config(
        fleet_nodes=result.nodes,
        fleet_policy=result.policy,
        fleet_routing=result.routing,
        fleet_ml=result.ml,
        fleet_trials=result.trials,
    )
    for trial, summary in enumerate(result.summaries):
        observer.note_seed(f"fleet.trial{trial}.seed", int(summary["seed"]))
        observer.record("fleet_run", trial=trial, **summary)
    for row in result.tenant_rows:
        observer.record(
            "fleet_tenant",
            tenant=row.name,
            slo_p99_ms=row.slo_p99_ms,
            attainment=row.attainment,
            goodput_qps=row.goodput_qps,
            p99_ms=row.p99_ms,
            slo_met_all_trials=row.slo_met_all_trials,
        )
    for sample in result.results[0].telemetry[:_MAX_TELEMETRY_ROWS]:
        observer.record("fleet_telemetry", trial=0, **sample)
    for row in result.results[0].controller[:_MAX_CONTROLLER_ROWS]:
        observer.record("fleet_controller", trial=0, **row)
    for row in result.results[0].actuation[:_MAX_CONTROLLER_ROWS]:
        observer.record("fleet_actuation", trial=0, **row)
    observer.metrics.gauge(
        "fleet.efficiency", policy=result.policy, routing=result.routing
    ).set(result.efficiency)
    observer.metrics.gauge(
        "fleet.fraction_saturated", policy=result.policy
    ).set(result.fraction_saturated)
    observer.metrics.counter("fleet.trials").inc(result.trials)
    observer.metrics.counter("fleet.batch_evictions").inc(result.batch_evictions)
    for row in result.tenant_rows:
        observer.metrics.histogram(
            "fleet.tenant_attainment", tenant=row.name
        ).observe(row.attainment)


def format_fleet_sim(result: FleetSimResult) -> str:
    """Render the fleet-sim outcome as the CLI table."""
    lines = [
        (
            f"fleet-sim: {result.nodes} nodes x {result.policy} "
            f"({result.routing} routing), ml={result.ml}, "
            f"trials={result.trials}"
        ),
        "",
        f"{'tenant':<10} {'slo_p99':>8} {'p99':>9} {'attain':>7} "
        f"{'goodput':>9}  slo_met",
    ]
    for row in result.tenant_rows:
        p99 = f"{row.p99_ms:.1f}ms" if row.p99_ms is not None else "-"
        lines.append(
            f"{row.name:<10} {row.slo_p99_ms:>6.1f}ms {p99:>9} "
            f"{row.attainment:>6.1%} {row.goodput_qps:>6.1f}qps  "
            f"{'yes' if row.slo_met_all_trials else 'NO'}"
        )
    lines += [
        "",
        f"fraction saturated   {result.fraction_saturated:.1%}",
        f"serving yield        {result.serving_yield:.1%}",
        f"batch yield          {result.batch_yield:.1%}",
        f"fleet efficiency     {result.efficiency:.1%}",
        f"batch evictions      {result.batch_evictions}",
    ]
    return "\n".join(lines)
