"""Experiment-facing alias of the deterministic sweep engine.

The implementation lives in :mod:`repro.parallel` (a leaf module, so the
low-level fleet survey can use it without importing the
experiment drivers). Experiment code imports it from here.
"""

from __future__ import annotations

from repro.parallel import (
    CHUNK_ENV,
    DEFAULT_BASE_SEED,
    JOBS_ENV,
    PROFILE_DIR_ENV,
    PROFILE_ENV,
    SweepPool,
    get_pool,
    maybe_profiled,
    point_seed,
    profiling_enabled,
    resolve_jobs,
    run_points,
    shutdown_pool,
    sweep_context,
)

__all__ = [
    "CHUNK_ENV",
    "DEFAULT_BASE_SEED",
    "JOBS_ENV",
    "PROFILE_DIR_ENV",
    "PROFILE_ENV",
    "SweepPool",
    "get_pool",
    "maybe_profiled",
    "point_seed",
    "profiling_enabled",
    "resolve_jobs",
    "run_points",
    "shutdown_pool",
    "sweep_context",
]
