"""Experiment-facing alias of the deterministic process-pool sweep runner.

The implementation lives in :mod:`repro.parallel` (a leaf module, so the
low-level :mod:`repro.cluster` layer can use it without importing the
experiment drivers). Experiment code imports it from here.
"""

from __future__ import annotations

from repro.parallel import (
    DEFAULT_BASE_SEED,
    JOBS_ENV,
    point_seed,
    resolve_jobs,
    run_points,
)

__all__ = [
    "DEFAULT_BASE_SEED",
    "JOBS_ENV",
    "point_seed",
    "resolve_jobs",
    "run_points",
]
