"""Fig 5: workload sensitivity to LLC vs DRAM interference (Section III-B).

Each of the four accelerated workloads is colocated with the LLC antagonist
(SMT-sharing the whole socket) and the DRAM antagonist (same socket, spare
cores). Performance is normalized to no interference. Shape targets: LLC
causes a noticeable ~14 % average degradation; DRAM a dramatic ~40 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import run_points
from repro.experiments.report import format_table
from repro.experiments.sensitivity import run_sensitivity
from repro.metrics.slowdown import arithmetic_mean

WORKLOADS = ("rnn1", "cnn1", "cnn2", "cnn3")


@dataclass(frozen=True)
class Fig05Result:
    """Normalized performance per workload and antagonist."""

    llc: dict[str, float]
    dram: dict[str, float]
    llc_average: float
    dram_average: float


def _fig05_point(point: tuple[str, str | None, str, float]) -> float:
    """One raw sensitivity run (module-level: runs inside pool workers)."""
    ml, antagonist, level, duration = point
    return run_sensitivity(ml, antagonist, level, duration=duration)


def run_fig05(duration: float = 40.0, jobs: int | None = None) -> Fig05Result:
    """Run the 4x2 sensitivity matrix (plus 4 baselines), 12 points total.

    With ``jobs`` > 1 the points run on a process pool; normalization
    happens after the sweep, so the numbers are identical to a serial run.
    """
    points = [
        (ml, antagonist, level, duration)
        for ml in WORKLOADS
        for antagonist, level in ((None, "H"), ("llc", "H"), ("dram", "H"))
    ]
    raw = run_points(_fig05_point, points, jobs=jobs)
    llc: dict[str, float] = {}
    dram: dict[str, float] = {}
    for i, ml in enumerate(WORKLOADS):
        baseline, llc_perf, dram_perf = raw[3 * i : 3 * i + 3]
        llc[ml] = llc_perf / baseline
        dram[ml] = dram_perf / baseline
    return Fig05Result(
        llc=llc,
        dram=dram,
        llc_average=arithmetic_mean(llc.values()),
        dram_average=arithmetic_mean(dram.values()),
    )


def format_fig05(result: Fig05Result) -> str:
    """Render the Fig 5 bars as a table."""
    rows = [[ml, result.llc[ml], result.dram[ml]] for ml in WORKLOADS]
    rows.append(["average", result.llc_average, result.dram_average])
    return format_table(
        "Fig 5: sensitivity to shared-resource interference (normalized perf)",
        ["workload", "LLC", "DRAM"],
        rows,
        note="paper averages: LLC 0.86, DRAM 0.60; CNN1 is the most DRAM-sensitive",
    )
