"""Fig 9: the CNN1 + Stitch memory-pressure sweep (Section V-B, case 1).

CNN1 is the workload most sensitive to bandwidth contention; Stitch is the
most aggressive consumer. Stitch instance count sweeps 1-6 under all four
configurations. Fig 9a plots CNN1 performance normalized to standalone;
Fig 9b plots Stitch throughput normalized to Baseline with one instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_series
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean

POLICIES = ("BL", "CT", "KP-SD", "KP")
INSTANCES = (1, 2, 3, 4, 5, 6)


@dataclass(frozen=True)
class Fig09Result:
    """Per-policy series over the instance sweep."""

    instances: tuple[int, ...]
    ml_perf: dict[str, list[float]]
    cpu_throughput: dict[str, list[float]]

    def ml_average(self, policy: str) -> float:
        """Mean CNN1 performance over the sweep."""
        return arithmetic_mean(self.ml_perf[policy])

    def cpu_harmonic_mean(self, policy: str) -> float:
        """Harmonic-mean Stitch throughput over the sweep."""
        return harmonic_mean(self.cpu_throughput[policy])


def run_fig09(
    instances: tuple[int, ...] = INSTANCES,
    policies: tuple[str, ...] = POLICIES,
    duration: float = 40.0,
) -> Fig09Result:
    """Run the full sweep; Stitch throughput normalized to BL @ 1 instance."""
    ml_perf: dict[str, list[float]] = {p: [] for p in policies}
    cpu_raw: dict[str, list[float]] = {p: [] for p in policies}
    for policy in policies:
        for n in instances:
            result = run_colocation(
                MixConfig(ml="cnn1", policy=policy, cpu="stitch", intensity=n,
                          duration=duration)
            )
            ml_perf[policy].append(result.ml_perf_norm)
            cpu_raw[policy].append(result.cpu_throughput)
    reference = cpu_raw.get("BL", [1.0])[0] or 1.0
    cpu_norm = {
        p: [value / reference for value in values] for p, values in cpu_raw.items()
    }
    return Fig09Result(
        instances=tuple(instances), ml_perf=ml_perf, cpu_throughput=cpu_norm
    )


def format_fig09(result: Fig09Result) -> str:
    """Render Fig 9a and Fig 9b."""
    a = format_series(
        "Fig 9a: CNN1 performance (normalized to standalone)",
        "stitch_instances",
        list(result.instances),
        {p: result.ml_perf[p] for p in result.ml_perf},
        note="paper: BL falls to ~0.4; KP-SD highest; KP ~= CT + 8%",
    )
    b = format_series(
        "Fig 9b: Stitch throughput (normalized to BL @ 1 instance)",
        "stitch_instances",
        list(result.instances),
        {p: result.cpu_throughput[p] for p in result.cpu_throughput},
        note="paper: KP-SD -25% avg vs BL; KP -9%; CT -11%",
    )
    return a + "\n\n" + b
