"""The ``fleet-serve`` experiment family: the serving control plane.

Where ``fleet-trace`` replays a trace through one opaque orchestrator run,
``fleet-serve`` drives the same replay through :class:`repro.serve.FleetService`
— epoch-stepped, with control commands applied at scheduled epoch
boundaries (tenant eviction/admission, routing swaps, manual grow/shrink),
an optional demand-driven autoscaler, and checkpoint/restore of the live
service.

Trials are independent points in the :mod:`repro.parallel` sense: the trace
and the serve plan (epoch length, autoscaler config, command schedule) ship
to workers once via the sweep context, and per-trial seeds derive from
:func:`repro.parallel.point_seed` — results are bit-identical for any
``jobs`` value, and a command-free, autoscaler-free run is bit-identical to
``fleet-trace`` on the same trace and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.errors import ExperimentError
from repro.experiments.fleet_sim import TenantSummary, _aggregate_tenants
from repro.experiments.fleet_trace import _resolve_trace
from repro.fleet.config import FleetConfig
from repro.fleet.orchestrator import FleetResult, fleet_config_for_trace
from repro.parallel import point_seed, run_points, sweep_context
from repro.serve import AutoscalerConfig, FleetService
from repro.traces import Trace, TraceGenConfig

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: Epoch snapshot rows exported to the observer (first trial only).
_MAX_SNAPSHOT_ROWS = 4096

#: Command verbs accepted in a schedule entry (``EPOCH:VERB[:ARG]``).
_COMMAND_VERBS = ("evict", "admit", "routing", "grow", "shrink")


@dataclass(frozen=True)
class FleetServeResult:
    """Aggregated outcome of one fleet-serve invocation."""

    nodes: int
    policy: str
    routing: str
    ml: str
    trials: int
    source: str
    requests: int
    trace_duration_s: float
    epoch_s: float
    #: Epochs stepped per trial (identical across trials).
    epochs: int
    autoscaled: bool
    tenant_rows: tuple[TenantSummary, ...]
    fraction_saturated: float
    serving_yield: float
    efficiency: float
    #: One JSON-clean summary per trial, in trial order — the artifact the
    #: determinism tests compare across ``jobs`` values.
    summaries: tuple[dict, ...]
    results: tuple[FleetResult, ...]
    #: Trial 0's epoch-boundary snapshots (JSON-clean rows).
    snapshots: tuple[dict, ...]
    #: Trial 0's applied-command audit log, ``(epoch, command)`` rows.
    commands: tuple[tuple[int, str], ...]
    trace: Trace


def parse_schedule(
    specs: Sequence[str],
) -> tuple[tuple[int, str, str | None], ...]:
    """Parse ``EPOCH:VERB[:ARG]`` command specs into schedule entries.

    Verbs: ``evict:TENANT``, ``admit:TENANT``, ``routing:NAME``, ``grow``,
    ``shrink``. The epoch is the boundary *before* which the command
    applies — ``10:evict:ads`` evicts ads after epoch 10 completes, so
    epoch 11 is the first epoch served without it.
    """
    schedule = []
    for spec in specs:
        parts = spec.split(":", 2)
        try:
            epoch = int(parts[0])
        except ValueError:
            raise ExperimentError(
                f"bad command spec {spec!r}: epoch must be an integer"
            ) from None
        if epoch < 0 or len(parts) < 2:
            raise ExperimentError(
                f"bad command spec {spec!r}: want EPOCH:VERB[:ARG]"
            )
        verb = parts[1]
        arg = parts[2] if len(parts) > 2 else None
        if verb not in _COMMAND_VERBS:
            raise ExperimentError(
                f"bad command spec {spec!r}: verb must be one of "
                f"{list(_COMMAND_VERBS)}"
            )
        if verb in ("evict", "admit", "routing") and not arg:
            raise ExperimentError(f"command spec {spec!r} needs an argument")
        if verb in ("grow", "shrink") and arg is not None:
            raise ExperimentError(f"command spec {spec!r} takes no argument")
        schedule.append((epoch, verb, arg))
    return tuple(sorted(schedule, key=lambda entry: entry[0]))


def _apply_command(service: FleetService, verb: str, arg: str | None) -> None:
    if verb == "evict":
        service.evict_tenant(arg)
    elif verb == "admit":
        service.admit_tenant(arg)
    elif verb == "routing":
        service.swap_routing(arg)
    elif verb == "grow":
        service.grow()
    else:
        service.shrink()


def drive_service(
    service: FleetService,
    schedule: Sequence[tuple[int, str, str | None]] = (),
    stop_at_epoch: int | None = None,
) -> None:
    """Step the service to the horizon (or ``stop_at_epoch``), applying
    scheduled commands at their epoch boundaries.

    Entries scheduled before the service's current epoch are skipped —
    which is exactly what a restored run wants: commands applied before
    the checkpoint are part of the pickled state, not replayed.
    """
    by_epoch: dict[int, list[tuple[str, str | None]]] = {}
    for epoch, verb, arg in schedule:
        by_epoch.setdefault(epoch, []).append((verb, arg))
    while not service.done:
        if stop_at_epoch is not None and service.epoch >= stop_at_epoch:
            return
        for verb, arg in by_epoch.pop(service.epoch, ()):
            _apply_command(service, verb, arg)
        service.step()


@dataclass(frozen=True)
class _TrialOutcome:
    """Per-trial payload shipped back from pool workers."""

    result: FleetResult
    snapshots: tuple[dict, ...]
    commands: tuple[tuple[int, str], ...]
    epochs: int


def _run_trial(config: FleetConfig) -> _TrialOutcome:
    """Module-level trial evaluator (picklable for the process pool)."""
    trace, collect_telemetry, epoch_s, autoscaler, schedule = sweep_context()
    service = FleetService(
        config,
        trace=trace,
        collect_telemetry=collect_telemetry,
        autoscaler=autoscaler,
        epoch_s=epoch_s,
    )
    service.start()
    drive_service(service, schedule)
    result = service.finish()
    return _TrialOutcome(
        result=result,
        snapshots=tuple(s.as_dict() for s in service.snapshots),
        commands=tuple(service.commands),
        epochs=service.epoch,
    )


def run_fleet_serve(
    trace: Trace | None = None,
    trace_path: str | None = None,
    gen: TraceGenConfig | None = None,
    nodes: int = 4,
    policy: str = "KP",
    routing: str = "least-loaded",
    ml: str = "rnn1",
    duration: float | None = None,
    warmup: float | None = None,
    interval: float | None = None,
    window_s: float | None = None,
    epoch_s: float | None = None,
    commands: Sequence[str] = (),
    autoscaler: AutoscalerConfig | None = None,
    save_path: str | None = None,
    save_at_epoch: int | None = None,
    restore_path: str | None = None,
    trials: int = 1,
    seed: int = 0,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
    sensors: SensorConfig | None = None,
    faults: ActuationFaultConfig | None = None,
    collect_telemetry: bool = True,
) -> FleetServeResult:
    """Serve a workload trace through the epoch-stepped control plane.

    ``commands`` are ``EPOCH:VERB[:ARG]`` specs (see :func:`parse_schedule`);
    ``epoch_s`` defaults to the fleet control interval. ``save_path`` +
    ``save_at_epoch`` checkpoint the live service mid-run and then continue
    to the horizon; ``restore_path`` resumes a checkpoint against the same
    trace instead of starting fresh (fleet shape then comes from the
    checkpoint, and schedule entries at already-served epochs are skipped).
    Checkpointing is single-run: both require ``trials == 1``.
    """
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    if (save_path is None) != (save_at_epoch is None):
        raise ExperimentError(
            "pass save_path and save_at_epoch together"
        )
    checkpointing = save_path is not None or restore_path is not None
    if checkpointing and trials != 1:
        raise ExperimentError("checkpoint/restore requires trials == 1")
    if restore_path is not None and save_path is not None:
        raise ExperimentError("pass either save_path or restore_path")
    schedule = parse_schedule(commands)

    resolved, source = _resolve_trace(trace, trace_path, gen, duration, seed)
    overrides: dict = {
        "nodes": nodes,
        "policy": policy,
        "routing": routing,
        "ml": ml,
    }
    if duration is not None:
        overrides["duration"] = min(duration, resolved.duration_s)
    if warmup is not None:
        overrides["warmup"] = warmup
    if interval is not None:
        overrides["interval"] = interval
    if window_s is not None:
        overrides["window_s"] = window_s
    base = fleet_config_for_trace(resolved, seed=seed, **overrides)
    if sensors is not None or faults is not None:
        base = replace(base, sensors=sensors, faults=faults)

    if restore_path is not None:
        service = FleetService.restore(restore_path, trace=resolved)
        source = f"restored({restore_path})"
        drive_service(service, schedule)
        outcomes = [_finish_outcome(service)]
        base = service.config
    elif save_path is not None:
        service = FleetService(
            base,
            trace=resolved,
            collect_telemetry=collect_telemetry,
            autoscaler=autoscaler,
            epoch_s=epoch_s,
        )
        service.start()
        drive_service(service, schedule, stop_at_epoch=save_at_epoch)
        service.save(save_path)
        drive_service(service, schedule)
        outcomes = [_finish_outcome(service)]
    else:
        configs = [
            replace(base, seed=point_seed(seed, trial))
            for trial in range(trials)
        ]
        outcomes = run_points(
            _run_trial,
            configs,
            jobs=jobs,
            base_seed=seed,
            context=(
                resolved, collect_telemetry, epoch_s, autoscaler, schedule,
            ),
        )

    results = [o.result for o in outcomes]
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    result = FleetServeResult(
        nodes=base.nodes,
        policy=base.policy,
        routing=base.routing,
        ml=base.ml,
        trials=trials,
        source=source,
        requests=len(resolved),
        trace_duration_s=resolved.duration_s,
        epoch_s=float(epoch_s if epoch_s is not None else base.interval),
        epochs=outcomes[0].epochs,
        autoscaled=autoscaler is not None,
        tenant_rows=_aggregate_tenants(results),
        fraction_saturated=mean([r.fraction_saturated for r in results]),
        serving_yield=mean([r.serving_yield for r in results]),
        efficiency=mean([r.efficiency for r in results]),
        summaries=tuple(r.summary() for r in results),
        results=tuple(results),
        snapshots=outcomes[0].snapshots,
        commands=outcomes[0].commands,
        trace=resolved,
    )
    _observe(result, resolved, observer)
    return result


def _finish_outcome(service: FleetService) -> _TrialOutcome:
    return _TrialOutcome(
        result=service.finish(),
        snapshots=tuple(s.as_dict() for s in service.snapshots),
        commands=tuple(service.commands),
        epochs=service.epoch,
    )


def _observe(
    result: FleetServeResult,
    trace: Trace,
    observer: "RunObserver | None",
) -> None:
    if observer is None or not observer.enabled:
        return
    observer.note_config(
        fleet_nodes=result.nodes,
        fleet_policy=result.policy,
        fleet_routing=result.routing,
        fleet_ml=result.ml,
        fleet_trials=result.trials,
        trace_source=result.source,
        trace_requests=result.requests,
        trace_duration_s=result.trace_duration_s,
        serve_epoch_s=result.epoch_s,
        serve_epochs=result.epochs,
        serve_autoscaled=result.autoscaled,
        trace_tenants=[t.name for t in trace.tenants],
    )
    for trial, summary in enumerate(result.summaries):
        observer.note_seed(f"serve.trial{trial}.seed", int(summary["seed"]))
        row = {k: v for k, v in summary.items() if k not in (
            "windows", "window_fleet",
        )}
        observer.record("serve_run", trial=trial, **row)
    for row in result.tenant_rows:
        observer.record(
            "serve_tenant",
            tenant=row.name,
            slo_p99_ms=row.slo_p99_ms,
            attainment=row.attainment,
            goodput_qps=row.goodput_qps,
            p99_ms=row.p99_ms,
            slo_met_all_trials=row.slo_met_all_trials,
        )
    for row in result.snapshots[:_MAX_SNAPSHOT_ROWS]:
        observer.record("serve_epoch", trial=0, **row)
    for epoch, command in result.commands:
        observer.record("serve_command", trial=0, epoch=epoch, command=command)
    observer.metrics.gauge(
        "serve.efficiency", policy=result.policy, routing=result.routing
    ).set(result.efficiency)
    observer.metrics.counter("serve.requests").inc(result.requests)


def format_fleet_serve(result: FleetServeResult) -> str:
    """Render the serve outcome: tenant table + epoch/command digest."""
    lines = [
        (
            f"fleet-serve: {result.requests} requests over "
            f"{result.trace_duration_s:.1f}s -> {result.nodes} nodes x "
            f"{result.policy} ({result.routing} routing), ml={result.ml}, "
            f"trials={result.trials}"
        ),
        (
            f"epochs: {result.epochs} x {result.epoch_s:.3g}s"
            f"{', autoscaled' if result.autoscaled else ''}"
            f" | trace source: {result.source}"
        ),
        "",
        f"{'tenant':<10} {'slo_p99':>8} {'p99':>9} {'attain':>7} "
        f"{'goodput':>9}  slo_met",
    ]
    for row in result.tenant_rows:
        p99 = f"{row.p99_ms:.1f}ms" if row.p99_ms is not None else "-"
        lines.append(
            f"{row.name:<10} {row.slo_p99_ms:>6.1f}ms {p99:>9} "
            f"{row.attainment:>6.1%} {row.goodput_qps:>6.1f}qps  "
            f"{'yes' if row.slo_met_all_trials else 'NO'}"
        )
    if result.commands:
        lines += ["", "commands applied (trial 0):"]
        for epoch, command in result.commands:
            lines.append(f"  epoch {epoch:>5}  {command}")
    if result.snapshots:
        last = result.snapshots[-1]
        lines += [
            "",
            (
                f"final epoch {last['epoch']}: "
                f"{last['nodes_active']}/{last['nodes_built']} nodes active, "
                f"attainment {last['attainment']:.1%}, "
                f"{last['dropped']} dropped, "
                f"{last['incident_alarms']} alarms"
            ),
        ]
    lines += [
        "",
        f"fraction saturated   {result.fraction_saturated:.1%}",
        f"serving yield        {result.serving_yield:.1%}",
        f"fleet efficiency     {result.efficiency:.1%}",
    ]
    return "\n".join(lines)
