"""Ablation: the RNN1 throughput-latency curve and its knee.

Section III-A: "we sweep the query throughput (measured in queries-per-
second or QPS) and analyze the tail latency. The target throughput we use in
the paper is at the knee of the tail latency curve. The sweep plot is
omitted for brevity."

This driver reconstructs that omitted sweep with the open-loop generator:
arrival rate as a fraction of analytic standalone capacity on the x-axis,
achieved QPS and p95 latency on the y-axes. The knee — where tail latency
departs from its flat region — sits in the 0.8-0.9 load band the evaluation
targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.node import ACCEL_SOCKET, Node
from repro.experiments.report import format_series
from repro.hw.placement import Placement
from repro.sim import Simulator
from repro.workloads.ml.catalog import ml_workload

LOAD_FRACTIONS = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class KneeResult:
    """The throughput-latency curve for RNN1."""

    load_fractions: tuple[float, ...]
    qps: list[float]
    p95_latency_ms: list[float]

    def knee_fraction(self) -> float:
        """First load fraction where p95 exceeds 1.5x the lightest load's."""
        floor = self.p95_latency_ms[0]
        for fraction, latency in zip(self.load_fractions, self.p95_latency_ms):
            if latency > 1.5 * floor:
                return fraction
        return self.load_fractions[-1]


def run_ablation_knee(
    duration: float = 30.0,
    warmup: float = 5.0,
    load_fractions: tuple[float, ...] = LOAD_FRACTIONS,
) -> KneeResult:
    """Sweep open-loop load for the standalone RNN1 server."""
    factory = ml_workload("rnn1")
    qps, tails = [], []
    for fraction in load_fractions:
        sim = Simulator()
        node = Node.create(factory.host_spec(), sim)
        topo = node.machine.topology
        placement = Placement(
            cores=frozenset(node.accel_socket_cores()[: factory.default_cores()]),
            mem_weights=topo.socket_memory_weights(ACCEL_SOCKET),
        )
        instance = factory.build(
            node.machine, placement, warmup_until=warmup, load_fraction=fraction
        )
        instance.start()
        sim.run_until(duration)
        qps.append(instance.performance(duration))
        tails.append(instance.tail_latency() * 1e3)
    return KneeResult(
        load_fractions=tuple(load_fractions), qps=qps, p95_latency_ms=tails
    )


def format_ablation_knee(result: KneeResult) -> str:
    """Render the throughput-latency sweep."""
    return format_series(
        "Ablation (RNN1): open-loop throughput-latency curve",
        "load fraction",
        list(result.load_fractions),
        {"QPS": result.qps, "p95 (ms)": result.p95_latency_ms},
        note=f"knee at ~{result.knee_fraction():.2f} of capacity "
             "(the evaluation's target operating point)",
    )
