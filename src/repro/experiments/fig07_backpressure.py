"""Fig 7: shared memory backpressure and prefetcher-toggling effectiveness.

Setup (Section IV-B): NUMA subdomains on, accelerated task in the
high-priority subdomain, a DRAM antagonist at aggressiveness L/M/H in the
low-priority subdomain. No runtime management — instead the fraction of the
antagonist's cores with L2 prefetchers *disabled* is swept manually, and for
each point the accelerated task's normalized performance (plus tail latency
for RNN1) and the measured memory saturation are reported.

Shape targets: with 0 % disabled, RNN1 loses ~14 % QPS (+16 % tail), CNN1
~50 %, CNN2 ~10 %; disabling prefetchers restores performance and drives
saturation down; at low pressure CNN1/CNN2 can slightly exceed standalone
thanks to the subdomain's local-latency benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.node import ACCEL_SOCKET, HI_SUBDOMAIN, LO_SUBDOMAIN, Node
from repro.control.actuators import HostControlPlane
from repro.experiments.common import standalone_performance
from repro.experiments.report import format_table
from repro.hw.placement import Placement
from repro.sim import Simulator
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.catalog import ml_workload

LEVELS = ("L", "M", "H")
#: Fractions of low-priority prefetchers disabled, as in the Fig 7 x-axes.
DISABLED_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class BackpressurePoint:
    """One (level, fraction-disabled) sample."""

    level: str
    disabled_fraction: float
    ml_perf_norm: float
    tail_norm: float | None
    saturation: float


@dataclass(frozen=True)
class Fig07Result:
    """The full sweep for one workload."""

    ml: str
    points: list[BackpressurePoint]

    def point(self, level: str, fraction: float) -> BackpressurePoint:
        """Look up one sweep sample."""
        for p in self.points:
            if p.level == level and abs(p.disabled_fraction - fraction) < 1e-9:
                return p
        raise KeyError((level, fraction))


def _run_point(
    ml: str, level: str, disabled_fraction: float, duration: float, warmup: float
) -> BackpressurePoint:
    factory = ml_workload(ml)
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    node.machine.set_snc(True)
    placement = Placement(
        cores=frozenset(node.hi_subdomain_cores()[: factory.default_cores()]),
        mem_weights={HI_SUBDOMAIN: 1.0},
    )
    instance = factory.build(node.machine, placement, warmup_until=warmup)
    instance.start()

    lo_cores = node.lo_subdomain_cores()
    BatchTask(
        task_id="dram",
        machine=node.machine,
        placement=Placement(
            cores=frozenset(lo_cores), mem_weights={LO_SUBDOMAIN: 1.0}
        ),
        profile=cpu_workload("dram", level),
        warmup_until=warmup,
    ).start()
    disabled = round(disabled_fraction * len(lo_cores))
    HostControlPlane(node).set_lo_prefetchers(len(lo_cores) - disabled)

    node.perf.read("fig07")  # reset the window at t=0
    sim.run_until(duration)
    reading = node.perf.read("fig07")

    ref_perf, ref_tail = standalone_performance(ml, duration, warmup)
    tail = instance.tail_latency()
    return BackpressurePoint(
        level=level,
        disabled_fraction=disabled_fraction,
        ml_perf_norm=instance.performance(duration) / ref_perf,
        tail_norm=tail / ref_tail if (tail is not None and ref_tail) else None,
        saturation=reading.socket_saturation.get(ACCEL_SOCKET, 0.0),
    )


def run_fig07(
    ml: str, duration: float = 40.0, warmup: float = 6.0,
    fractions: tuple[float, ...] = DISABLED_FRACTIONS,
) -> Fig07Result:
    """Sweep prefetchers-disabled fraction x aggressor level for ``ml``."""
    points = [
        _run_point(ml, level, fraction, duration, warmup)
        for fraction in fractions
        for level in LEVELS
    ]
    return Fig07Result(ml=ml, points=points)


def format_fig07(result: Fig07Result) -> str:
    """Render the sweep as one table per workload."""
    headers = ["pf_disabled"] + [
        f"{metric}-{level}"
        for metric in ("perf", "sat")
        for level in LEVELS
    ]
    rows = []
    fractions = sorted({p.disabled_fraction for p in result.points})
    for fraction in fractions:
        row: list[object] = [f"{fraction:.0%}"]
        for level in LEVELS:
            row.append(result.point(level, fraction).ml_perf_norm)
        for level in LEVELS:
            row.append(result.point(level, fraction).saturation)
        rows.append(row)
    return format_table(
        f"Fig 7 ({result.ml}): backpressure vs prefetcher toggling",
        headers,
        rows,
        note="paper at 0% disabled/H: RNN1 -14% QPS, CNN1 -50%, CNN2 -10%",
    )
