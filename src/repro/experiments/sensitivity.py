"""Raw sensitivity runs (Figs 5 and 15): no policy, explicit placements.

The Section III-B / VI-A studies colocate a synthetic antagonist directly
with the accelerated task: the LLC antagonist shares the ML task's cores
through SMT (it attacks in-pipeline resources and private caches), the DRAM
antagonist runs on the remaining cores of the same socket, and the
Remote-DRAM antagonist splits its threads and dataset across sockets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.node import ACCEL_SOCKET, Node
from repro.errors import ExperimentError
from repro.hw.placement import Placement
from repro.sim import Simulator
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.catalog import ml_workload

#: Default horizons, matching :mod:`repro.experiments.common`.
DURATION = 40.0
WARMUP = 6.0


@dataclass(frozen=True)
class SensitivityPoint:
    """One (workload, antagonist) measurement."""

    ml: str
    antagonist: str
    ml_perf_norm: float


def run_sensitivity(
    ml: str,
    antagonist: str | None,
    level: str = "H",
    remote_data_fraction: float = 0.0,
    remote_thread_fraction: float = 0.0,
    duration: float = DURATION,
    warmup: float = WARMUP,
) -> float:
    """Raw ML performance under one antagonist placement, steps/s or QPS.

    ``remote_*`` fractions configure the Remote-DRAM sweep: the fraction of
    the antagonist's dataset homed on the ML task's socket and the fraction
    of its threads running there. (Note Fig 16's axes: the *antagonist* is
    based on the remote socket; data on the ML-local socket crosses the
    inter-socket link.)
    """
    factory = ml_workload(ml)
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    topo = node.machine.topology

    ml_cores = factory.default_cores()
    ml_placement = Placement(
        cores=frozenset(node.accel_socket_cores()[:ml_cores]),
        mem_weights=topo.socket_memory_weights(ACCEL_SOCKET),
    )
    instance = factory.build(node.machine, ml_placement, warmup_until=warmup)
    instance.start()

    if antagonist is not None:
        profile = cpu_workload(antagonist, level)
        if antagonist == "llc":
            # SMT colocation: the antagonist shares every core on the socket,
            # including the ML task's.
            cores = frozenset(node.accel_socket_cores())
            mem = topo.socket_memory_weights(ACCEL_SOCKET)
        elif antagonist == "remote-dram":
            if not 0.0 <= remote_data_fraction <= 1.0:
                raise ExperimentError("remote_data_fraction must be in [0, 1]")
            if not 0.0 <= remote_thread_fraction <= 1.0:
                raise ExperimentError("remote_thread_fraction must be in [0, 1]")
            for task in _remote_tasks(
                node, profile, remote_thread_fraction, remote_data_fraction,
                ml_cores, warmup,
            ):
                task.start()
            sim.run_until(duration)
            return instance.performance(duration)
        else:
            cores = frozenset(node.accel_socket_cores()[ml_cores:])
            mem = topo.socket_memory_weights(ACCEL_SOCKET)
        task = BatchTask(
            task_id=f"antagonist-{antagonist}",
            machine=node.machine,
            placement=Placement(cores=cores, mem_weights=mem),
            profile=profile,
            warmup_until=warmup,
        )
        task.start()

    sim.run_until(duration)
    return instance.performance(duration)


def _remote_tasks(
    node: Node,
    profile,
    local_thread_fraction: float,
    local_data_fraction: float,
    ml_cores: int,
    warmup: float,
) -> list[BatchTask]:
    """Build the Remote-DRAM antagonist as up to two tasks.

    A traffic source lives on one socket, so the thread split becomes two
    tasks — one per socket — each carrying its share of the threads. Both
    route their traffic by the same data split (``local_data_fraction`` of
    the dataset homed on the ML task's socket), so the traffic crossing the
    inter-socket link is exactly what the Fig 16 axes prescribe.
    """
    topo = node.machine.topology
    remote_socket = 1 - ACCEL_SOCKET
    threads = profile.phase.threads
    local_threads = round(local_thread_fraction * threads)
    remote_threads = threads - local_threads

    local_weights = topo.socket_memory_weights(ACCEL_SOCKET)
    remote_weights = topo.socket_memory_weights(remote_socket)
    mem: dict[int, float] = {}
    for node_id, weight in local_weights.items():
        mem[node_id] = weight * local_data_fraction
    for node_id, weight in remote_weights.items():
        mem[node_id] = mem.get(node_id, 0.0) + weight * (1.0 - local_data_fraction)

    tasks: list[BatchTask] = []
    if local_threads > 0:
        tasks.append(
            BatchTask(
                task_id="antagonist-remote-dram-local",
                machine=node.machine,
                placement=Placement(
                    cores=frozenset(topo.cores_of_socket(ACCEL_SOCKET)[ml_cores:]),
                    mem_weights=mem,
                ),
                profile=profile.scaled_to_threads(local_threads),
                warmup_until=warmup,
            )
        )
    if remote_threads > 0:
        tasks.append(
            BatchTask(
                task_id="antagonist-remote-dram-remote",
                machine=node.machine,
                placement=Placement(
                    cores=frozenset(topo.cores_of_socket(remote_socket)),
                    mem_weights=mem,
                ),
                profile=profile.scaled_to_threads(remote_threads),
                warmup_until=warmup,
            )
        )
    return tasks
