"""The ``fleet-trace`` experiment family: trace-driven fleet replay.

Where ``fleet-sim`` offers fixed-rate open-loop load, ``fleet-trace``
replays a production-style workload trace (:mod:`repro.traces`) over the
fleet orchestrator: per-request arrival times, tenants and job-family
demands come from the trace, and the run reports per-tenant SLO attainment
and fleet efficiency as *time-of-day curves* over the trace horizon.

The trace can come from three places: an in-memory :class:`Trace`, a trace
file (``trace_path``), or the synthetic generator (``gen``). Trials replay
the same trace under different orchestrator seeds (router tie-breaks,
node-local noise), isolating the scheduling variance from the workload.
Trials are independent points in the :mod:`repro.parallel` sense: the trace
ships to workers once via the sweep context, and per-trial seeds derive
from :func:`repro.parallel.point_seed`, so results are bit-identical for
any ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.errors import ExperimentError
from repro.experiments.fleet_sim import TenantSummary, _aggregate_tenants
from repro.fleet.config import FleetConfig
from repro.fleet.orchestrator import (
    FleetResult,
    fleet_config_for_trace,
    run_fleet,
)
from repro.parallel import point_seed, run_points, sweep_context
from repro.traces import Trace, TraceGenConfig, generate_trace, load_trace

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: Windowed-curve rows exported to the observer (first trial only).
_MAX_WINDOW_ROWS = 4096


@dataclass(frozen=True)
class FleetTraceResult:
    """Aggregated outcome of one fleet-trace invocation."""

    nodes: int
    policy: str
    routing: str
    ml: str
    trials: int
    #: Where the trace came from (generator config, file path, or caller).
    source: str
    requests: int
    trace_duration_s: float
    window_s: float
    tenant_rows: tuple[TenantSummary, ...]
    fraction_saturated: float
    serving_yield: float
    efficiency: float
    #: One JSON-clean summary per trial, in trial order — the artifact the
    #: determinism tests compare across ``jobs`` values.
    summaries: tuple[dict, ...]
    #: The full per-trial results.
    results: tuple[FleetResult, ...]
    #: Trial 0's per-(window, tenant) SLO curve rows.
    windows: tuple[dict, ...]
    #: Trial 0's per-window fleet curve rows (pooled yield + saturation).
    window_fleet: tuple[dict, ...]
    #: The replayed trace itself (for ``--save-trace`` and inspection).
    trace: Trace


def _run_trial(config: FleetConfig) -> FleetResult:
    """Module-level trial evaluator (picklable for the process pool).

    The trace rides in on the sweep context — installed identically on the
    serial path and in every pool worker, so it never needs to survive a
    per-point pickle round trip.
    """
    trace, collect_telemetry = sweep_context()
    return run_fleet(config, collect_telemetry=collect_telemetry, trace=trace)


def _resolve_trace(
    trace: Trace | None,
    trace_path: str | None,
    gen: TraceGenConfig | None,
    duration: float | None,
    seed: int,
) -> tuple[Trace, str]:
    """Materialize the trace and describe its provenance."""
    provided = sum(x is not None for x in (trace, trace_path, gen))
    if provided > 1:
        raise ExperimentError(
            "pass at most one of trace, trace_path or gen"
        )
    if trace is not None:
        return trace, "caller"
    if trace_path is not None:
        return load_trace(trace_path), trace_path
    if gen is None:
        # Default: a short synthetic day scaled to the requested horizon.
        gen = TraceGenConfig(seed=seed, duration_s=duration or 120.0)
    return generate_trace(gen), f"generated(seed={gen.seed})"


def run_fleet_trace(
    trace: Trace | None = None,
    trace_path: str | None = None,
    gen: TraceGenConfig | None = None,
    nodes: int = 4,
    policy: str = "KP",
    routing: str = "least-loaded",
    ml: str = "rnn1",
    duration: float | None = None,
    warmup: float | None = None,
    interval: float | None = None,
    window_s: float | None = None,
    trials: int = 1,
    seed: int = 0,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
    sensors: SensorConfig | None = None,
    faults: ActuationFaultConfig | None = None,
    collect_telemetry: bool = True,
) -> FleetTraceResult:
    """Replay a workload trace over the fleet and aggregate over trials.

    ``duration`` defaults to the trace horizon (pass less to replay a
    prefix); ``window_s`` defaults to 1/24th of the horizon (hour-of-day
    buckets for a day-long trace). ``jobs`` parallelizes trials with
    bit-identical results.
    """
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    resolved, source = _resolve_trace(trace, trace_path, gen, duration, seed)

    overrides: dict = {
        "nodes": nodes,
        "policy": policy,
        "routing": routing,
        "ml": ml,
    }
    if duration is not None:
        overrides["duration"] = min(duration, resolved.duration_s)
    if warmup is not None:
        overrides["warmup"] = warmup
    if interval is not None:
        overrides["interval"] = interval
    if window_s is not None:
        overrides["window_s"] = window_s
    base = fleet_config_for_trace(resolved, seed=seed, **overrides)
    if sensors is not None or faults is not None:
        base = replace(base, sensors=sensors, faults=faults)

    configs = [
        replace(base, seed=point_seed(seed, trial)) for trial in range(trials)
    ]
    results: list[FleetResult] = run_points(
        _run_trial,
        configs,
        jobs=jobs,
        base_seed=seed,
        context=(resolved, collect_telemetry),
    )

    mean = lambda values: sum(values) / len(values)  # noqa: E731
    result = FleetTraceResult(
        nodes=base.nodes,
        policy=base.policy,
        routing=base.routing,
        ml=base.ml,
        trials=trials,
        source=source,
        requests=len(resolved),
        trace_duration_s=resolved.duration_s,
        window_s=float(base.window_s or 0.0),
        tenant_rows=_aggregate_tenants(results),
        fraction_saturated=mean([r.fraction_saturated for r in results]),
        serving_yield=mean([r.serving_yield for r in results]),
        efficiency=mean([r.efficiency for r in results]),
        summaries=tuple(r.summary() for r in results),
        results=tuple(results),
        windows=results[0].windows,
        window_fleet=results[0].window_fleet,
        trace=resolved,
    )
    _observe(result, resolved, observer)
    return result


def _observe(
    result: FleetTraceResult,
    trace: Trace,
    observer: "RunObserver | None",
) -> None:
    if observer is None or not observer.enabled:
        return
    observer.note_config(
        fleet_nodes=result.nodes,
        fleet_policy=result.policy,
        fleet_routing=result.routing,
        fleet_ml=result.ml,
        fleet_trials=result.trials,
        trace_source=result.source,
        trace_requests=result.requests,
        trace_duration_s=result.trace_duration_s,
        trace_tenants=[t.name for t in trace.tenants],
        trace_families=[f.name for f in trace.families],
        trace_meta=dict(trace.meta),
        trace_window_s=result.window_s,
    )
    for trial, summary in enumerate(result.summaries):
        observer.note_seed(f"fleet.trial{trial}.seed", int(summary["seed"]))
        row = {k: v for k, v in summary.items() if k not in (
            "windows", "window_fleet",
        )}
        observer.record("fleet_run", trial=trial, **row)
    for row in result.tenant_rows:
        observer.record(
            "fleet_tenant",
            tenant=row.name,
            slo_p99_ms=row.slo_p99_ms,
            attainment=row.attainment,
            goodput_qps=row.goodput_qps,
            p99_ms=row.p99_ms,
            slo_met_all_trials=row.slo_met_all_trials,
        )
    for row in result.windows[:_MAX_WINDOW_ROWS]:
        observer.record("fleet_window", trial=0, scope="tenant", **row)
    for row in result.window_fleet[:_MAX_WINDOW_ROWS]:
        observer.record("fleet_window", trial=0, scope="fleet", **row)
    observer.metrics.gauge(
        "fleet.trace_efficiency", policy=result.policy, routing=result.routing
    ).set(result.efficiency)
    observer.metrics.counter("fleet.trace_requests").inc(result.requests)
    for row in result.tenant_rows:
        observer.metrics.histogram(
            "fleet.tenant_attainment", tenant=row.name
        ).observe(row.attainment)


def _format_hours(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:05.2f}h"
    return f"{seconds:6.1f}s"


def format_fleet_trace(result: FleetTraceResult) -> str:
    """Render the fleet-trace outcome: tenant table + time-of-day curve."""
    lines = [
        (
            f"fleet-trace: {result.requests} requests over "
            f"{_format_hours(result.trace_duration_s).strip()} -> "
            f"{result.nodes} nodes x {result.policy} "
            f"({result.routing} routing), ml={result.ml}, "
            f"trials={result.trials}"
        ),
        f"trace source: {result.source}",
        "",
        f"{'tenant':<10} {'slo_p99':>8} {'p99':>9} {'attain':>7} "
        f"{'goodput':>9}  slo_met",
    ]
    for row in result.tenant_rows:
        p99 = f"{row.p99_ms:.1f}ms" if row.p99_ms is not None else "-"
        lines.append(
            f"{row.name:<10} {row.slo_p99_ms:>6.1f}ms {p99:>9} "
            f"{row.attainment:>6.1%} {row.goodput_qps:>6.1f}qps  "
            f"{'yes' if row.slo_met_all_trials else 'NO'}"
        )
    if result.window_fleet:
        lines += [
            "",
            f"time-of-day curve (window = {_format_hours(result.window_s).strip()}, "
            "trial 0):",
            f"{'start':>8} {'offered':>8} {'attain':>7} {'eff':>7} "
            f"{'saturated':>9}",
        ]
        for row in result.window_fleet:
            lines.append(
                f"{_format_hours(row['start_s']):>8} {row['offered']:>8} "
                f"{row['attainment']:>6.1%} {row['efficiency']:>6.1%} "
                f"{row['fraction_saturated']:>8.1%}"
            )
    lines += [
        "",
        f"fraction saturated   {result.fraction_saturated:.1%}",
        f"serving yield        {result.serving_yield:.1%}",
        f"fleet efficiency     {result.efficiency:.1%}",
    ]
    return "\n".join(lines)
