"""Ablation: hardware vs software prefetcher management during transients.

Section VI-B argues for integrating prefetcher-pressure management into
hardware: "A hardware-based solution has the advantage of being able to
adapt to fast-changing system behavior with little performance overhead."
Software management reacts at the sampling interval; during a sudden load
transient the accelerated task eats the full backpressure for up to one
interval before the runtime responds.

This driver injects a DRAM burst and compares the ML task's performance in
the *transient window* (the first sampling interval after burst start) and
in steady state, under software KP-SD at the paper's 10 s sampling interval
versus the solver-integrated hardware prefetch QoS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.node import LO_SUBDOMAIN, Node
from repro.core.policies import IsolationPolicy, make_policy
from repro.experiments.common import standalone_performance
from repro.experiments.report import format_table
from repro.hw.placement import Placement
from repro.sim import Simulator
from repro.sim.engine import PRIORITY_CONTROL
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.catalog import ml_workload


@dataclass(frozen=True)
class TransientResult:
    """Transient vs steady-state protection for one mechanism."""

    policy: str
    transient_perf: float
    steady_perf: float


def _run(
    policy_name: str,
    interval: float,
    ml: str,
    quiet: float,
    transient_window: float,
    steady_until: float,
) -> TransientResult:
    factory = ml_workload(ml)
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    policy: IsolationPolicy = make_policy(
        policy_name, node, ml_cores=factory.default_cores(), interval=interval
    )
    policy.prepare()
    instance = factory.build(node.machine, policy.ml_placement(), warmup_until=2.0)
    instance.start()
    if policy.has_control_loop:
        sim.every(interval, policy.tick, label="policy:tick",
                  priority=PRIORITY_CONTROL)

    def start_burst() -> None:
        task = BatchTask(
            "dram",
            node.machine,
            Placement(
                cores=frozenset(node.lo_subdomain_cores()),
                mem_weights={LO_SUBDOMAIN: 1.0},
            ),
            cpu_workload("dram", "H"),
        )
        task.start()
        node.lo_tasks.append(task)

    sim.at(quiet, start_burst, label="burst")
    reference, _ = standalone_performance(ml)

    sim.run_until(quiet)
    steps0 = _progress(instance)
    sim.run_until(quiet + transient_window)
    steps1 = _progress(instance)
    sim.run_until(steady_until)
    steps2 = _progress(instance)
    transient = (steps1 - steps0) / transient_window / reference
    steady = (steps2 - steps1) / (steady_until - quiet - transient_window) / reference
    return TransientResult(
        policy=policy_name, transient_perf=transient, steady_perf=steady
    )


def _progress(instance) -> float:
    task = instance.task
    if hasattr(task, "steps_completed"):
        return float(task.steps_completed)
    return float(task.recorder.completed)


@dataclass(frozen=True)
class HwPrefetchResult:
    """The software-vs-hardware transient comparison."""

    software: TransientResult
    hardware: TransientResult
    sampling_interval: float


def run_ablation_hwprefetch(
    ml: str = "cnn1",
    sampling_interval: float = 10.0,
    quiet: float = 8.0,
    transient_window: float = 8.0,
    steady_until: float = 45.0,
) -> HwPrefetchResult:
    """Compare KP-SD (sampled) against HW-PF (instant) across a burst."""
    software = _run(
        "KP-SD", sampling_interval, ml, quiet, transient_window, steady_until
    )
    hardware = _run(
        "HW-PF", sampling_interval, ml, quiet, transient_window, steady_until
    )
    return HwPrefetchResult(
        software=software, hardware=hardware, sampling_interval=sampling_interval
    )


def format_ablation_hwprefetch(result: HwPrefetchResult) -> str:
    """Render the transient comparison."""
    rows = [
        ["KP-SD (software)", result.software.transient_perf,
         result.software.steady_perf],
        ["HW-PF (hardware)", result.hardware.transient_perf,
         result.hardware.steady_perf],
    ]
    return format_table(
        "Ablation (§VI-B): prefetcher QoS reaction time across a load burst",
        ["mechanism", "transient ml perf", "steady ml perf"],
        rows,
        note=(
            f"software loop samples every {result.sampling_interval:.0f}s "
            "(the paper's production interval); hardware reacts immediately"
        ),
    )
