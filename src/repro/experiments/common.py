"""Shared colocation harness used by every evaluation experiment.

One call = one machine lifetime: build the node, let the policy prepare the
hardware and place the tasks, run the simulation, and report the ML task's
normalized performance (and tail latency), the CPU workload's aggregate
throughput, and the controller's parameter history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.core.policies import IsolationPolicy, ParameterSample, make_policy
from repro.core.policies.base import ROLE_BACKFILL, ROLE_LO
from repro.errors import ExperimentError
from repro.sim import Simulator
from repro.sim.engine import PRIORITY_CONTROL, PRIORITY_OBSERVE
from repro.sim.tracing import TimelineTracer
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.catalog import MlInstance, ml_workload

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: Default simulated measurement horizon, seconds.
DEFAULT_DURATION = 40.0
#: Default warmup excluded from all measurements, seconds.
DEFAULT_WARMUP = 6.0
#: Default control interval. The paper samples every 10 s over long runs and
#: reports insensitivity to the sampling frequency; we scale the interval
#: with the shortened simulated horizon.
DEFAULT_INTERVAL = 1.0


@dataclass(frozen=True)
class MixConfig:
    """One colocation run: an ML workload, a CPU workload, and a policy."""

    ml: str
    policy: str = "BL"
    cpu: str | None = None
    intensity: int | str = 1
    duration: float = DEFAULT_DURATION
    warmup: float = DEFAULT_WARMUP
    interval: float = DEFAULT_INTERVAL
    seed: int = 0
    #: Telemetry-degradation knobs for the policy's sensor suite
    #: (``None`` = perfect sensing, the historical behaviour).
    sensors: SensorConfig | None = None
    #: Actuation-fault knobs for the policy's control plane
    #: (``None`` = every write lands, the historical behaviour).
    faults: ActuationFaultConfig | None = None


@dataclass
class ColocationResult:
    """Measurements from one colocation run."""

    config: MixConfig
    #: Raw ML performance (steps/s or QPS).
    ml_perf: float
    #: ML performance normalized to the standalone run (1.0 = no loss).
    ml_perf_norm: float
    #: Raw p95 latency, seconds (inference only).
    ml_tail: float | None
    #: p95 latency normalized to standalone (inference only).
    ml_tail_norm: float | None
    #: Aggregate CPU throughput, work units/s (0 when no CPU workload).
    cpu_throughput: float
    #: Controller knob history (empty for BL / HW-QOS).
    params: list[ParameterSample] = field(default_factory=list)
    #: Simulator events dispatched during the run (perf observability).
    events_dispatched: int = 0
    #: Snapshot of the machine's :class:`~repro.hw.contention.SolverStats`
    #: (solves, cache hit rate, short-circuits, fixed-point rounds).
    solver_stats: dict[str, float] = field(default_factory=dict)


_STANDALONE_CACHE: dict[tuple, tuple[float, float | None]] = {}


def standalone_performance(
    ml: str,
    duration: float = DEFAULT_DURATION,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 0,
) -> tuple[float, float | None]:
    """ML performance (and tail) with no colocation, BL configuration.

    Cached per parameter set: every normalized number in the evaluation
    divides by this run.
    """
    key = (ml, duration, warmup, seed)
    if key not in _STANDALONE_CACHE:
        result = run_colocation(
            MixConfig(ml=ml, policy="BL", cpu=None, duration=duration,
                      warmup=warmup, seed=seed)
        )
        _STANDALONE_CACHE[key] = (result.ml_perf, result.ml_tail)
    return _STANDALONE_CACHE[key]


def _telemetry_sample(node: Node) -> dict[str, float]:
    """One windowed read of the run-observer's dedicated perf reader."""
    reading = node.perf.read("obs")
    return {
        "time": node.sim.now,
        "window_s": reading.elapsed,
        "socket_bw_gbps": reading.socket_bandwidth_gbps.get(node.accel_socket, 0.0),
        "socket_latency": reading.socket_latency_factor.get(
            node.accel_socket, 1.0
        ),
        "saturation": reading.socket_saturation.get(node.accel_socket, 0.0),
        "hipri_bw_gbps": reading.subdomain_bandwidth_gbps.get(
            node.hi_subdomain, 0.0
        ),
        "lopri_bw_gbps": reading.subdomain_bandwidth_gbps.get(
            node.lo_subdomain, 0.0
        ),
        "socket_throttle": reading.socket_throttle.get(node.accel_socket, 1.0),
    }


def run_colocation(
    config: MixConfig,
    tracer: TimelineTracer | None = None,
    observer: "RunObserver | None" = None,
    label: str | None = None,
) -> ColocationResult:
    """Execute one colocation run and collect its measurements.

    ``observer`` (a :class:`repro.obs.RunObserver`) additionally exports the
    controller's tick records, solver stats and a telemetry time-series
    sampled every control interval. When ``observer`` is ``None`` or
    disabled, the run pays no observability cost at all.
    """
    if config.duration <= config.warmup:
        raise ExperimentError("duration must exceed warmup")
    factory = ml_workload(config.ml)
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    policy: IsolationPolicy = make_policy(
        config.policy,
        node,
        ml_cores=factory.default_cores(),
        interval=config.interval,
        sensors=config.sensors,
        faults=config.faults,
    )
    policy.prepare()

    ml_instance: MlInstance = factory.build(
        node.machine,
        policy.ml_placement(),
        warmup_until=config.warmup,
        seed=config.seed,
        tracer=tracer,
    )

    cpu_tasks: list[BatchTask] = []
    roles: dict[str, list[BatchTask]] = {ROLE_LO: [], ROLE_BACKFILL: []}
    if config.cpu is not None:
        profile = cpu_workload(config.cpu, config.intensity)
        for plan in policy.plan_cpu(profile):
            task = BatchTask(
                task_id=plan.task_id,
                machine=node.machine,
                placement=plan.placement,
                profile=plan.profile,
                warmup_until=config.warmup,
            )
            cpu_tasks.append(task)
            roles.setdefault(plan.role, []).append(task)
    policy.register(roles)

    ml_instance.start()
    for task in cpu_tasks:
        task.start()
    if policy.has_control_loop:
        sim.every(
            config.interval, policy.tick, label="policy:tick",
            priority=PRIORITY_CONTROL,
        )

    observing = observer is not None and observer.enabled
    telemetry_rows: list[dict[str, float]] = []
    if observing:
        sim.every(
            config.interval,
            lambda: telemetry_rows.append(_telemetry_sample(node)),
            label="obs:telemetry",
            priority=PRIORITY_OBSERVE,
        )

    sim.run_until(config.duration)
    if tracer is not None:
        tracer.flush(sim.now)

    ml_perf = ml_instance.performance(config.duration)
    ml_tail = ml_instance.tail_latency()
    ref_perf, ref_tail = (
        standalone_performance(config.ml, config.duration, config.warmup, config.seed)
        if (config.cpu is not None or config.policy != "BL")
        else (ml_perf, ml_tail)
    )
    cpu_throughput = sum(task.throughput(config.duration) for task in cpu_tasks)
    result = ColocationResult(
        config=config,
        ml_perf=ml_perf,
        ml_perf_norm=ml_perf / ref_perf if ref_perf > 0 else 0.0,
        ml_tail=ml_tail,
        ml_tail_norm=(
            ml_tail / ref_tail if (ml_tail is not None and ref_tail) else None
        ),
        cpu_throughput=cpu_throughput,
        params=policy.parameter_history(),
        events_dispatched=sim.dispatched_events,
        solver_stats=node.machine.solver_stats.as_dict(),
    )
    if observing:
        run_label = label or f"{config.ml}+{config.cpu or 'none'}:{config.policy}"
        observer.record_colocation(
            run_label,
            result,
            ticks=policy.tick_history(),
            telemetry=telemetry_rows,
            journal=policy.actuation_journal(),
        )
        if tracer is not None:
            observer.observe_tracer(run_label, tracer)
    return result
