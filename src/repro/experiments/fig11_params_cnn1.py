"""Figs 11: runtime parameters for the CNN1 + Stitch mixes.

For each Stitch instance count, record the steady-state knob each mechanism
settles on: cores allocated to CPU tasks (CT), prefetchers enabled for CPU
tasks (KP-SD), and cores allocated to CPU tasks including backfill (KP).
Values are normalized to their maxima, matching the paper's y-axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.policies import ParameterSample
from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_series

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver


@dataclass(frozen=True)
class ParamSweepResult:
    """Normalized steady-state knob values over a sweep."""

    ml: str
    cpu: str
    intensities: tuple[int, ...]
    ct_cores: list[float]
    kpsd_prefetchers: list[float]
    kp_cores: list[float]


def _steady_state(params: list[ParameterSample], knob: str) -> float:
    """Average of a knob over the last half of the run (post-convergence)."""
    if not params:
        return 0.0
    tail = params[len(params) // 2:]
    return sum(getattr(p, knob) for p in tail) / len(tail)


def run_param_sweep(
    ml: str,
    cpu: str,
    intensities: tuple[int, ...],
    duration: float = 40.0,
    observer: "RunObserver | None" = None,
) -> ParamSweepResult:
    """Record controller parameters for CT / KP-SD / KP over a sweep.

    With an enabled ``observer`` every point's full controller tick stream
    (measurements + decisions, not just the steady-state averages plotted
    in the figure) lands in the JSONL/trace export.
    """
    ct, kpsd, kp = [], [], []
    for n in intensities:
        r_ct = run_colocation(
            MixConfig(ml=ml, policy="CT", cpu=cpu, intensity=n, duration=duration),
            observer=observer, label=f"{ml}+{cpu}:CT:n={n}",
        )
        ct.append(_steady_state(r_ct.params, "lo_cores"))
        r_sd = run_colocation(
            MixConfig(ml=ml, policy="KP-SD", cpu=cpu, intensity=n, duration=duration),
            observer=observer, label=f"{ml}+{cpu}:KP-SD:n={n}",
        )
        kpsd.append(_steady_state(r_sd.params, "lo_prefetchers"))
        r_kp = run_colocation(
            MixConfig(ml=ml, policy="KP", cpu=cpu, intensity=n, duration=duration),
            observer=observer, label=f"{ml}+{cpu}:KP:n={n}",
        )
        kp.append(
            _steady_state(r_kp.params, "lo_cores")
            + _steady_state(r_kp.params, "backfill_cores")
        )
    def normalize(values: list[float]) -> list[float]:
        peak = max(values) if values and max(values) > 0 else 1.0
        return [v / peak for v in values]
    if observer is not None and observer.enabled:
        observer.note_config(
            sweep_ml=ml, sweep_cpu=cpu, intensities=list(intensities),
            duration=duration,
        )
        for n, steady in zip(intensities, kp):
            observer.metrics.gauge(
                "param_sweep.kp_cores_steady", ml=ml, cpu=cpu, intensity=n
            ).set(steady)
    return ParamSweepResult(
        ml=ml, cpu=cpu, intensities=tuple(intensities),
        ct_cores=normalize(ct),
        kpsd_prefetchers=normalize(kpsd),
        kp_cores=normalize(kp),
    )


def run_fig11(
    duration: float = 40.0, observer: "RunObserver | None" = None
) -> ParamSweepResult:
    """The CNN1 + Stitch parameter sweep (Fig 11a-c)."""
    return run_param_sweep(
        "cnn1", "stitch", (1, 2, 3, 4, 5, 6), duration, observer=observer
    )


def format_params(result: ParamSweepResult, figure: str) -> str:
    """Render the three parameter series."""
    return format_series(
        f"{figure}: runtime parameters for {result.ml} + {result.cpu}",
        "intensity",
        list(result.intensities),
        {
            "CT cores (norm)": result.ct_cores,
            "KP-SD prefetchers (norm)": result.kpsd_prefetchers,
            "KP cores incl backfill (norm)": result.kp_cores,
        },
        note="paper: throttling deepens with load; KP leaves CPU tasks more cores than CT",
    )


def format_fig11(result: ParamSweepResult) -> str:
    """Render Fig 11."""
    return format_params(result, "Fig 11")
