"""Ablation: dynamic churn — aggressors arriving and leaving mid-run.

Section II-B motivates runtime (rather than scheduling-time) isolation with
production churn: "task colocation is often inevitable due to miscellaneous
software behavior (system updates, garbage collection, load spikes of benign
tasks, etc.)". This experiment injects a Stitch burst into a quiet machine
mid-run and removes it later, then measures the ML task's performance in
each phase and how far the controller's knobs moved — demonstrating that
Kelp both reacts to the burst and *releases* resources afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.node import Node
from repro.core.policies import IsolationPolicy, make_policy
from repro.core.policies.base import ROLE_BACKFILL, ROLE_LO
from repro.experiments.common import standalone_performance
from repro.experiments.report import format_table
from repro.sim import Simulator
from repro.sim.engine import PRIORITY_CONTROL
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.catalog import ml_workload


@dataclass(frozen=True)
class ChurnPhase:
    """ML performance over one phase of the churn timeline."""

    name: str
    start: float
    end: float
    ml_perf_norm: float
    lo_prefetchers_at_end: int


@dataclass(frozen=True)
class ChurnResult:
    """The three-phase churn timeline for one policy."""

    policy: str
    phases: list[ChurnPhase]

    def phase(self, name: str) -> ChurnPhase:
        """Look up a phase by name (quiet/burst/recovered)."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)


def run_ablation_churn(
    policy_name: str = "KP",
    ml: str = "cnn1",
    quiet: float = 20.0,
    burst: float = 25.0,
    recovery: float = 25.0,
    warmup: float = 5.0,
) -> ChurnResult:
    """Run the quiet -> burst -> recovered timeline under ``policy_name``."""
    factory = ml_workload(ml)
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    policy: IsolationPolicy = make_policy(
        policy_name, node, ml_cores=factory.default_cores()
    )
    policy.prepare()
    instance = factory.build(node.machine, policy.ml_placement(), warmup_until=warmup)
    instance.start()
    if policy.has_control_loop:
        sim.every(policy.interval, policy.tick, label="policy:tick",
                  priority=PRIORITY_CONTROL)

    burst_tasks: list[BatchTask] = []

    def start_burst() -> None:
        roles: dict[str, list[BatchTask]] = {ROLE_LO: [], ROLE_BACKFILL: []}
        for plan in policy.plan_cpu(cpu_workload("stitch", 5)):
            task = BatchTask(
                plan.task_id, node.machine, plan.placement, plan.profile
            )
            burst_tasks.append(task)
            roles.setdefault(plan.role, []).append(task)
        policy.register(roles)
        for task in burst_tasks:
            task.start()

    def stop_burst() -> None:
        for task in burst_tasks:
            task.stop()
        node.lo_tasks.clear()
        node.backfill_tasks.clear()

    t_burst_start = quiet
    t_burst_end = quiet + burst
    t_end = t_burst_end + recovery
    sim.at(t_burst_start, start_burst, label="churn:start")
    sim.at(t_burst_end, stop_burst, label="churn:stop")

    reference, _ = standalone_performance(ml)
    phases: list[ChurnPhase] = []
    marks = [
        ("quiet", warmup, t_burst_start),
        ("burst", t_burst_start, t_burst_end),
        ("recovered", t_burst_end, t_end),
    ]
    sim.run_until(warmup)
    progress_before = _progress(instance)
    for name, start, end in marks:
        # Sample the controller state just before the phase boundary so the
        # burst phase reports the knobs as they stood *during* the burst.
        sim.run_until(end - 1e-6)
        prefetchers = node.lo_prefetchers_enabled()
        sim.run_until(end)
        progress_now = _progress(instance)
        perf = (progress_now - progress_before) / (end - start) / reference
        progress_before = progress_now
        phases.append(
            ChurnPhase(
                name=name, start=start, end=end, ml_perf_norm=perf,
                lo_prefetchers_at_end=prefetchers,
            )
        )
    return ChurnResult(policy=policy_name, phases=phases)


def _progress(instance) -> float:
    """Monotone completed-work counter for the ML instance."""
    task = instance.task
    if hasattr(task, "steps_completed"):
        return float(task.steps_completed)
    return float(task.recorder.completed)


def format_ablation_churn(result: ChurnResult) -> str:
    """Render the churn timeline."""
    rows = [
        [p.name, f"{p.start:.0f}-{p.end:.0f}s", p.ml_perf_norm,
         p.lo_prefetchers_at_end]
        for p in result.phases
    ]
    return format_table(
        f"Ablation ({result.policy}): dynamic churn (Stitch burst mid-run)",
        ["phase", "window", "ml_perf_norm", "lo_prefetchers"],
        rows,
        note="the runtime must throttle during the burst and release afterwards",
    )
