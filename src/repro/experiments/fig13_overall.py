"""Fig 13: overall ML and CPU slowdown across all workload mixes.

Twelve mixes — each of the four ML workloads against Stream, Stitch and
CPUML — under all four configurations. ML slowdown (standalone / measured;
averaged arithmetically) on the left axis, CPU slowdown (Baseline-mix
throughput / measured; averaged harmonically over normalized throughputs,
reported here as slowdown) on the right, following the figure's caption.

Shape targets: KP vs BL cuts ML slowdown ~43 % for ~24 % CPU throughput;
KP vs CT: ~7 % less ML slowdown at equal CPU throughput; KP vs KP-SD:
slightly worse ML (+4 %) but ~19 % more CPU throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.report import format_table
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

POLICIES = ("BL", "CT", "KP-SD", "KP")
#: The evaluation's CPU-workload intensities: a saturating Stream, the
#: mid-sweep Stitch count, and a CPUML thread count — all sized past one
#: subdomain's cores, as the paper's batch tiers are, so that backfilling
#: has work to reclaim.
MIXES: tuple[tuple[str, int | str], ...] = (
    ("stream", 12),
    ("stitch", 4),
    ("cpuml", 12),
)
ML_WORKLOADS = ("rnn1", "cnn1", "cnn2", "cnn3")


@dataclass(frozen=True)
class MixCell:
    """One (ml, cpu, policy) cell of Fig 13."""

    ml: str
    cpu: str
    policy: str
    ml_slowdown: float
    cpu_norm_throughput: float


@dataclass(frozen=True)
class Fig13Result:
    """All cells plus per-policy averages."""

    cells: list[MixCell]

    def cell(self, ml: str, cpu: str, policy: str) -> MixCell:
        """Look up one cell."""
        for c in self.cells:
            if (c.ml, c.cpu, c.policy) == (ml, cpu, policy):
                return c
        raise KeyError((ml, cpu, policy))

    def ml_slowdown_average(self, policy: str) -> float:
        """Arithmetic-mean ML slowdown across mixes."""
        return arithmetic_mean(
            c.ml_slowdown for c in self.cells if c.policy == policy
        )

    def cpu_throughput_hmean(self, policy: str) -> float:
        """Harmonic-mean normalized CPU throughput across mixes."""
        return harmonic_mean(
            max(c.cpu_norm_throughput, 1e-6)
            for c in self.cells
            if c.policy == policy
        )


def run_fig13(
    duration: float = 40.0,
    policies: tuple[str, ...] = POLICIES,
    ml_workloads: tuple[str, ...] = ML_WORKLOADS,
    mixes: tuple[tuple[str, int | str], ...] = MIXES,
    observer: "RunObserver | None" = None,
) -> Fig13Result:
    """Run the full mix matrix. CPU throughput is normalized per-mix to BL.

    With an enabled ``observer`` every cell exports its controller tick
    records, solver stats and telemetry series, plus per-cell and
    per-policy roll-up metrics.
    """
    observing = observer is not None and observer.enabled
    cells: list[MixCell] = []
    bl_cpu: dict[tuple[str, str], float] = {}
    for ml in ml_workloads:
        for cpu, intensity in mixes:
            for policy in policies:
                result = run_colocation(
                    MixConfig(ml=ml, policy=policy, cpu=cpu, intensity=intensity,
                              duration=duration),
                    observer=observer,
                    label=f"fig13:{ml}+{cpu}:{policy}",
                )
                if policy == "BL":
                    bl_cpu[(ml, cpu)] = result.cpu_throughput or 1e-9
                cell = MixCell(
                    ml=ml,
                    cpu=cpu,
                    policy=policy,
                    ml_slowdown=1.0 / max(result.ml_perf_norm, 1e-6),
                    cpu_norm_throughput=(
                        result.cpu_throughput / bl_cpu[(ml, cpu)]
                    ),
                )
                cells.append(cell)
                if observing:
                    observer.metrics.histogram(
                        "fig13.ml_slowdown", policy=policy
                    ).observe(cell.ml_slowdown)
                    observer.metrics.histogram(
                        "fig13.cpu_norm_throughput", policy=policy
                    ).observe(cell.cpu_norm_throughput)
    fig = Fig13Result(cells=cells)
    if observing:
        observer.note_config(
            fig13_duration=duration, fig13_policies=list(policies),
            fig13_ml_workloads=list(ml_workloads),
            fig13_mixes=[list(m) for m in mixes],
        )
        for policy in policies:
            observer.metrics.gauge(
                "fig13.ml_slowdown_avg", policy=policy
            ).set(fig.ml_slowdown_average(policy))
            observer.metrics.gauge(
                "fig13.cpu_throughput_hmean", policy=policy
            ).set(fig.cpu_throughput_hmean(policy))
    return fig


def format_fig13(result: Fig13Result) -> str:
    """Render the Fig 13 matrix and the per-policy averages."""
    mls = sorted({c.ml for c in result.cells})
    cpus = sorted({c.cpu for c in result.cells})
    policies = [p for p in POLICIES if any(c.policy == p for c in result.cells)]
    rows = []
    for ml in mls:
        for cpu in cpus:
            row: list[object] = [f"{ml}+{cpu}"]
            for policy in policies:
                cell = result.cell(ml, cpu, policy)
                row.append(cell.ml_slowdown)
                row.append(cell.cpu_norm_throughput)
            rows.append(row)
    avg_row: list[object] = ["average"]
    for policy in policies:
        avg_row.append(result.ml_slowdown_average(policy))
        avg_row.append(result.cpu_throughput_hmean(policy))
    rows.append(avg_row)
    headers = ["mix"] + [
        f"{p} {metric}" for p in policies for metric in ("ml-slwdn", "cpu-tput")
    ]
    return format_table(
        "Fig 13: ML slowdown / normalized CPU throughput per mix",
        headers,
        rows,
        note="paper: KP vs BL -43% ml slowdown @ 24% cpu loss; KP ~= CT cpu with "
             "-7% slowdown; KP vs KP-SD +4% slowdown, +19% cpu",
    )
