"""The ``fleet-incidents`` experiment family: faults, detection, response.

For each trial the family replays the *same* trace under the same fleet
seed three times — clean (no faults), faulted without remediation, and
faulted with auto-remediation — and scores every scheduled incident from
the three runs: detection latency, localization accuracy, and SLO damage
with / without remediation against the clean counterfactual (see
:mod:`repro.incidents.score`). Because admission accounting counts a
request as offered before any fault can touch it, all three runs offer an
identical stream and damage is a plain difference of SLO-good counts.

Trials are independent sweep points (three runs each); the trace, the
incident schedule and the detector thresholds ship to workers once via the
sweep context, so results are bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ExperimentError
from repro.experiments.fleet_trace import _format_hours, _resolve_trace
from repro.fleet.config import FleetConfig
from repro.fleet.orchestrator import fleet_config_for_trace, run_fleet
from repro.incidents.detect import DetectorConfig
from repro.incidents.engine import IncidentEngine
from repro.incidents.faults import (
    INCIDENT_KINDS,
    IncidentSchedule,
    default_schedule,
    load_scenario,
)
from repro.incidents.score import Scorecard, score_trial
from repro.parallel import point_seed, run_points, sweep_context
from repro.traces import Trace, TraceGenConfig

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: The three runs of one trial, in point order.
MODES = ("clean", "norem", "rem")


@dataclass(frozen=True)
class IncidentClassRow:
    """One incident class aggregated over trials."""

    kind: str
    target: str
    trials: int
    detected: int
    localized: int
    mean_detection_latency_s: float | None
    mean_damage_norem: float
    mean_damage_rem: float

    @property
    def mean_damage_avoided(self) -> float:
        return self.mean_damage_norem - self.mean_damage_rem


@dataclass(frozen=True)
class FleetIncidentsResult:
    """Aggregated outcome of one fleet-incidents invocation."""

    nodes: int
    policy: str
    routing: str
    ml: str
    trials: int
    source: str
    requests: int
    trace_duration_s: float
    interval: float
    schedule: IncidentSchedule
    #: Scenario provenance: ``generated(seed=…)`` or a scenario file path.
    scenario_source: str
    #: Per trial: ``{"clean"|"norem"|"rem": fleet summary dict}``.
    summaries: tuple[dict, ...]
    #: Per trial: ``{"clean"|"norem"|"rem": engine export dict}``.
    exports: tuple[dict, ...]
    scorecards: tuple[Scorecard, ...]
    class_rows: tuple[IncidentClassRow, ...]
    trace: Trace

    def artifact(self) -> dict:
        """The JSON-clean artifact the determinism tests compare."""
        return {
            "scenario": self.schedule.as_dict(),
            "summaries": list(self.summaries),
            "exports": list(self.exports),
            "scorecards": [card.as_dict() for card in self.scorecards],
        }


def _run_point(point: tuple[FleetConfig, str]) -> tuple[dict, dict]:
    """One (config, mode) run — module-level for the process pool."""
    config, mode = point
    trace, schedule, detector_config, collect_telemetry = sweep_context()
    engine = IncidentEngine(
        schedule=(
            schedule
            if mode != "clean"
            else IncidentSchedule(seed=schedule.seed)
        ),
        remediate=(mode == "rem"),
        detector_config=detector_config,
    )
    result = run_fleet(
        config,
        collect_telemetry=collect_telemetry,
        trace=trace,
        hooks=engine,
    )
    return result.summary(), engine.export()


def _resolve_schedule(
    schedule: IncidentSchedule | None,
    scenario_path: str | None,
    classes: tuple[str, ...],
    incident_seed: int,
    duration: float,
    nodes: int,
    **knobs,
) -> tuple[IncidentSchedule, str]:
    if schedule is not None and scenario_path is not None:
        raise ExperimentError("pass at most one of schedule or scenario_path")
    if schedule is not None:
        return schedule, "caller"
    if scenario_path is not None:
        return load_scenario(scenario_path), scenario_path
    resolved = default_schedule(
        duration, nodes, seed=incident_seed, classes=classes, **knobs
    )
    return resolved, f"generated(seed={incident_seed})"


def _aggregate_classes(
    scorecards: tuple[Scorecard, ...],
) -> tuple[IncidentClassRow, ...]:
    rows: list[IncidentClassRow] = []
    if not scorecards:
        return ()
    for index, spec_score in enumerate(scorecards[0].incidents):
        per_trial = [card.incidents[index] for card in scorecards]
        latencies = [
            s.detection_latency_s
            for s in per_trial
            if s.detection_latency_s is not None
        ]
        rows.append(
            IncidentClassRow(
                kind=spec_score.kind,
                target=spec_score.target,
                trials=len(per_trial),
                detected=len(latencies),
                localized=sum(s.localization_correct for s in per_trial),
                mean_detection_latency_s=(
                    sum(latencies) / len(latencies) if latencies else None
                ),
                mean_damage_norem=(
                    sum(s.damage_norem for s in per_trial) / len(per_trial)
                ),
                mean_damage_rem=(
                    sum(s.damage_rem for s in per_trial) / len(per_trial)
                ),
            )
        )
    return tuple(rows)


def run_fleet_incidents(
    trace: Trace | None = None,
    trace_path: str | None = None,
    gen: TraceGenConfig | None = None,
    schedule: IncidentSchedule | None = None,
    scenario_path: str | None = None,
    classes: tuple[str, ...] = INCIDENT_KINDS,
    incident_seed: int | None = None,
    intruder_rate_qps: float | None = None,
    intruder_demand: float = 300.0,
    batch_workload: str = "stream",
    batch_intensity: int = 12,
    drop_fraction: float = 0.5,
    nodes: int = 3,
    policy: str = "KP",
    routing: str = "random",
    ml: str = "rnn1",
    duration: float | None = None,
    warmup: float | None = None,
    interval: float | None = None,
    window_s: float | None = None,
    trials: int = 1,
    seed: int = 0,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
    detector_config: DetectorConfig | None = None,
    collect_telemetry: bool = False,
) -> FleetIncidentsResult:
    """Run the incident scenario over a trace replay and score it.

    Each trial costs three fleet runs (clean / faulted / remediated); the
    incident schedule comes from ``schedule``, a ``scenario_path`` file, or
    :func:`~repro.incidents.faults.default_schedule` over ``classes`` with
    ``incident_seed`` (default: ``seed``).
    """
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    resolved_trace, source = _resolve_trace(
        trace, trace_path, gen, duration, seed
    )
    overrides: dict = {
        "nodes": nodes,
        "policy": policy,
        "routing": routing,
        "ml": ml,
    }
    if duration is not None:
        overrides["duration"] = min(duration, resolved_trace.duration_s)
    if warmup is not None:
        overrides["warmup"] = warmup
    if interval is not None:
        overrides["interval"] = interval
    if window_s is not None:
        overrides["window_s"] = window_s
    base = fleet_config_for_trace(resolved_trace, seed=seed, **overrides)
    resolved_schedule, scenario_source = _resolve_schedule(
        schedule,
        scenario_path,
        tuple(classes),
        incident_seed if incident_seed is not None else seed,
        base.duration,
        base.nodes,
        intruder_rate_qps=intruder_rate_qps,
        intruder_demand=intruder_demand,
        batch_workload=batch_workload,
        batch_intensity=batch_intensity,
        drop_fraction=drop_fraction,
    )
    for spec in resolved_schedule.incidents:
        if spec.node is not None and spec.node >= base.nodes:
            raise ExperimentError(
                f"incident {spec.kind!r} targets node {spec.node} but the "
                f"fleet has {base.nodes} nodes"
            )
        if spec.end_s > base.duration:
            raise ExperimentError(
                f"incident {spec.kind!r} ends at {spec.end_s:.0f}s, beyond "
                f"the {base.duration:.0f}s replay horizon"
            )

    points: list[tuple[FleetConfig, str]] = []
    for trial in range(trials):
        config = replace(base, seed=point_seed(seed, trial))
        for mode in MODES:
            points.append((config, mode))
    outcomes = run_points(
        _run_point,
        points,
        jobs=jobs,
        base_seed=seed,
        context=(
            resolved_trace,
            resolved_schedule,
            detector_config,
            collect_telemetry,
        ),
    )

    summaries: list[dict] = []
    exports: list[dict] = []
    scorecards: list[Scorecard] = []
    for trial in range(trials):
        by_mode_summary = {}
        by_mode_export = {}
        for offset, mode in enumerate(MODES):
            summary, export = outcomes[trial * len(MODES) + offset]
            by_mode_summary[mode] = summary
            by_mode_export[mode] = export
        summaries.append(by_mode_summary)
        exports.append(by_mode_export)
        scorecards.append(
            score_trial(
                resolved_schedule,
                by_mode_export["clean"],
                by_mode_export["norem"],
                by_mode_export["rem"],
                interval=base.interval,
                duration=base.duration,
            )
        )

    result = FleetIncidentsResult(
        nodes=base.nodes,
        policy=base.policy,
        routing=base.routing,
        ml=base.ml,
        trials=trials,
        source=source,
        requests=len(resolved_trace),
        trace_duration_s=resolved_trace.duration_s,
        interval=base.interval,
        schedule=resolved_schedule,
        scenario_source=scenario_source,
        summaries=tuple(summaries),
        exports=tuple(exports),
        scorecards=tuple(scorecards),
        class_rows=_aggregate_classes(tuple(scorecards)),
        trace=resolved_trace,
    )
    _observe(result, observer)
    return result


def _observe(
    result: FleetIncidentsResult, observer: "RunObserver | None"
) -> None:
    if observer is None or not observer.enabled:
        return
    observer.note_config(
        fleet_nodes=result.nodes,
        fleet_policy=result.policy,
        fleet_routing=result.routing,
        fleet_ml=result.ml,
        fleet_trials=result.trials,
        trace_source=result.source,
        trace_requests=result.requests,
        trace_duration_s=result.trace_duration_s,
        incident_scenario=result.scenario_source,
        incident_seed=result.schedule.seed,
        incident_classes=list(result.schedule.kinds),
    )
    for trial, by_mode in enumerate(result.summaries):
        observer.note_seed(
            f"incidents.trial{trial}.seed", int(by_mode["clean"]["seed"])
        )
    for trial, card in enumerate(result.scorecards):
        for score in card.incidents:
            row = score.as_dict()
            row["incident_kind"] = row.pop("kind")
            observer.record("incident", trial=trial, **row)
        by_mode = result.exports[trial]
        for mode in ("norem", "rem"):
            for alarm in by_mode[mode]["alarms"]:
                observer.record("alarm", trial=trial, mode=mode, **alarm)
        for action in by_mode["rem"]["remediations"]:
            observer.record("remediation", trial=trial, **action)
    total_avoided = sum(
        card.total_damage_norem - card.total_damage_rem
        for card in result.scorecards
    )
    observer.metrics.counter("incidents.scheduled").inc(
        len(result.schedule) * result.trials
    )
    observer.metrics.counter("incidents.slo_damage_avoided").inc(
        max(total_avoided, 0)
    )
    for row in result.class_rows:
        if row.mean_detection_latency_s is not None:
            observer.metrics.histogram(
                "incidents.detection_latency_s", kind=row.kind
            ).observe(row.mean_detection_latency_s)


def format_fleet_incidents(result: FleetIncidentsResult) -> str:
    """Render the incident scorecard."""
    lines = [
        (
            f"fleet-incidents: {len(result.schedule)} incidents over "
            f"{_format_hours(result.trace_duration_s).strip()} x {result.trials} "
            f"trial(s) -> {result.nodes} nodes x {result.policy} "
            f"({result.routing} routing), ml={result.ml}"
        ),
        f"trace source: {result.source}; scenario: {result.scenario_source}",
        "",
        f"{'incident':<20} {'detect':>8} {'detector':>20} {'localized':>10} "
        f"{'damage':>8} {'remedied':>9} {'avoided':>8}",
    ]
    for row in result.class_rows:
        detect = (
            f"{row.mean_detection_latency_s:.0f}s"
            if row.mean_detection_latency_s is not None
            else "-"
        )
        detector = "-"
        localized = f"{row.localized}/{row.trials}"
        for card in result.scorecards:
            for score in card.incidents:
                if score.kind == row.kind and score.detected_by:
                    detector = score.detected_by
                    break
            if detector != "-":
                break
        lines.append(
            f"{row.kind:<20} {detect:>8} {detector:>20} {localized:>10} "
            f"{row.mean_damage_norem:>8.1f} {row.mean_damage_rem:>9.1f} "
            f"{row.mean_damage_avoided:>8.1f}"
        )
    totals = [
        (
            card.total_damage_norem,
            card.total_damage_rem,
            card.offered,
        )
        for card in result.scorecards
    ]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    lines += [
        "",
        f"offered per trial        {mean([t[2] for t in totals]):.0f}",
        f"SLO damage, no response  {mean([t[0] for t in totals]):.1f}",
        f"SLO damage, remediated   {mean([t[1] for t in totals]):.1f}",
        (
            "damage avoided           "
            f"{mean([t[0] - t[1] for t in totals]):.1f}"
        ),
    ]
    return "\n".join(lines)
