"""Ablation: how Kelp degrades when its control plane degrades.

The paper's controller assumes it can read fresh, exact counters and that
every knob write lands. Production control planes get neither: telemetry
pipelines batch and drop samples, and cpuset/MSR writes race busy hosts.
This driver sweeps a *degradation ladder* — staleness, multiplicative
counter noise, sample dropout and actuation-fault rate rising together —
over the fleet simulation with the full Kelp policy, and reports how the
serving tier's SLO attainment and the cluster efficiency erode.

The claim under test is graceful degradation: fleet efficiency should fall
monotonically (no cliff) as the control plane gets worse, with SLO
attainment held close to the clean run, because Kelp's watermark hysteresis
tolerates individually wrong decisions — a mis-throttle costs batch
throughput, not serving SLO — and failed writes are retried on later ticks
once the controller sees their effect missing.

Each ladder level is an independent sweep point (its fleet carries a
deterministic derived seed), so ``jobs`` fans levels out over a process
pool with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.errors import ExperimentError
from repro.experiments.report import format_table
from repro.fleet.config import FleetConfig, uniform_batch_jobs
from repro.fleet.orchestrator import FleetResult, run_fleet
from repro.parallel import point_seed, run_points

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver

#: Journal rows exported to the observer per ladder level.
_MAX_JOURNAL_ROWS = 2048


@dataclass(frozen=True)
class DegradationLevel:
    """One rung of the degradation ladder (all knobs rise together)."""

    name: str
    #: Sample-and-hold period, simulated seconds (0 = fresh every tick).
    staleness_s: float
    #: Multiplicative Gaussian noise sigma on every counter.
    noise_sigma: float
    #: Probability each fresh telemetry sample is lost.
    dropout_prob: float
    #: Probability each knob write attempt fails / is deferred one tick.
    fault_prob: float

    def sensor_config(self, seed: int) -> SensorConfig | None:
        if not (self.staleness_s or self.noise_sigma or self.dropout_prob):
            return None
        return SensorConfig(
            staleness_period=self.staleness_s,
            noise_sigma=self.noise_sigma,
            dropout_prob=self.dropout_prob,
            seed=seed,
        )

    def fault_config(self, seed: int) -> ActuationFaultConfig | None:
        if not self.fault_prob:
            return None
        return ActuationFaultConfig(
            fail_prob=self.fault_prob, defer_prob=self.fault_prob, seed=seed
        )


#: The default ladder: clean control plane -> badly degraded one.
LEVELS: tuple[DegradationLevel, ...] = (
    DegradationLevel("clean", 0.0, 0.00, 0.00, 0.00),
    DegradationLevel("mild", 1.0, 0.05, 0.05, 0.05),
    DegradationLevel("moderate", 2.0, 0.15, 0.15, 0.15),
    DegradationLevel("severe", 4.0, 0.30, 0.30, 0.30),
)


@dataclass(frozen=True)
class LevelOutcome:
    """The fleet outcome at one degradation level."""

    level: DegradationLevel
    serving_yield: float
    batch_yield: float
    efficiency: float
    #: Pooled SLO attainment (good / offered) across tenants.
    attainment: float
    #: Physical knob writes that were lost / delayed by fault injection.
    failed_writes: int
    deferred_writes: int
    result: FleetResult


@dataclass(frozen=True)
class SensorNoiseAblationResult:
    """Outcome of the whole ladder sweep."""

    outcomes: tuple[LevelOutcome, ...]

    @property
    def attainments(self) -> list[float]:
        return [o.attainment for o in self.outcomes]

    @property
    def efficiencies(self) -> list[float]:
        return [o.efficiency for o in self.outcomes]


def _run_level(config: FleetConfig) -> FleetResult:
    """Module-level point evaluator (picklable for the process pool)."""
    return run_fleet(config)


def run_ablation_sensor_noise(
    duration: float = 8.0,
    nodes: int = 4,
    batch_jobs: int = 2,
    seed: int = 0,
    levels: tuple[DegradationLevel, ...] = LEVELS,
    jobs: int | None = None,
    observer: "RunObserver | None" = None,
) -> SensorNoiseAblationResult:
    """Sweep the degradation ladder over the KP fleet simulation."""
    if duration <= 0:
        raise ExperimentError("duration must be positive")
    warmup = duration / 4.0
    base = FleetConfig(
        nodes=nodes,
        policy="KP",
        routing="interference-aware",
        ml="rnn1",
        batch_jobs=uniform_batch_jobs(batch_jobs, intensity=8),
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    # Every level shares the fleet seed: identical arrivals, identical
    # routing draws. Only the control-plane degradation differs (its own
    # per-level derived seed), so level-to-level deltas measure the
    # degradation alone, not run-to-run sampling noise.
    configs = []
    for index, level in enumerate(levels):
        level_seed = point_seed(seed, index)
        configs.append(
            replace(
                base,
                sensors=level.sensor_config(level_seed),
                faults=level.fault_config(level_seed),
            )
        )
    results: list[FleetResult] = run_points(
        _run_level, configs, jobs=jobs, base_seed=seed
    )
    outcomes = []
    for level, result in zip(levels, results):
        offered = result.offered_total
        outcomes.append(
            LevelOutcome(
                level=level,
                serving_yield=result.serving_yield,
                batch_yield=result.batch_yield,
                efficiency=result.efficiency,
                attainment=result.good_total / offered if offered else 0.0,
                failed_writes=sum(
                    1 for r in result.actuation if r["status"] == "failed"
                ),
                deferred_writes=sum(
                    1 for r in result.actuation if r["status"] == "deferred"
                ),
                result=result,
            )
        )
    out = SensorNoiseAblationResult(outcomes=tuple(outcomes))
    _observe(out, observer)
    return out


def _observe(
    result: SensorNoiseAblationResult, observer: "RunObserver | None"
) -> None:
    if observer is None or not observer.enabled:
        return
    observer.note_config(
        sensor_noise_levels=[o.level.name for o in result.outcomes]
    )
    for outcome in result.outcomes:
        level = outcome.level
        observer.note_seed(
            f"sensor-noise.{level.name}.seed", outcome.result.config.seed
        )
        observer.record(
            "sensor_noise_level",
            level=level.name,
            staleness_s=level.staleness_s,
            noise_sigma=level.noise_sigma,
            dropout_prob=level.dropout_prob,
            fault_prob=level.fault_prob,
            attainment=outcome.attainment,
            serving_yield=outcome.serving_yield,
            batch_yield=outcome.batch_yield,
            efficiency=outcome.efficiency,
            failed_writes=outcome.failed_writes,
            deferred_writes=outcome.deferred_writes,
        )
        # The actuation journal is the novel export: every physical knob
        # write the degraded control plane performed, lost or delayed.
        for row in outcome.result.actuation[:_MAX_JOURNAL_ROWS]:
            observer.record("sensor_noise_actuation", level=level.name, **row)
        observer.metrics.histogram(
            "sensor_noise.attainment", level=level.name
        ).observe(outcome.attainment)
        observer.metrics.counter(
            "sensor_noise.failed_writes", level=level.name
        ).inc(outcome.failed_writes)


def format_ablation_sensor_noise(result: SensorNoiseAblationResult) -> str:
    """Render the degradation ladder."""
    rows = [
        [
            o.level.name,
            f"{o.level.staleness_s:.0f}s/{o.level.noise_sigma:.2f}/"
            f"{o.level.dropout_prob:.2f}",
            o.level.fault_prob,
            o.attainment,
            o.serving_yield,
            o.batch_yield,
            o.efficiency,
            o.failed_writes + o.deferred_writes,
        ]
        for o in result.outcomes
    ]
    monotone = all(
        a >= b - 1e-9
        for a, b in zip(result.efficiencies, result.efficiencies[1:])
    )
    slo_loss = result.attainments[0] - min(result.attainments)
    return format_table(
        "Ablation: Kelp under degraded telemetry and actuation faults",
        [
            "level", "stale/noise/drop", "fault_p", "attainment",
            "serving_yield", "batch_yield", "efficiency", "lost_writes",
        ],
        rows,
        note=(
            "fleet efficiency declines "
            + ("monotonically" if monotone else "non-monotonically")
            + " down the ladder while SLO attainment stays within "
            f"{slo_loss:.1%} of clean: watermark hysteresis absorbs "
            "individually wrong decisions, so the serving tier is shielded "
            "and the cost lands on the batch tier — graceful degradation, "
            "not a cliff"
        ),
    )
