"""cgroup cpuset interface: per-task CPU masks.

CoreThrottle and Kelp limit low-priority tasks by shrinking the set of cores
their cgroup may run on. The simulated controller manipulates the ``cores``
field of a task's :class:`~repro.hw.placement.Placement`.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import HostInterfaceError
from repro.hw.machine import Machine
from repro.hw.placement import Placement


class PlaceableTask(Protocol):
    """Tasks whose placement the host interfaces may mutate."""

    task_id: str
    placement: Placement
    parked: bool

    def set_placement(self, placement: Placement) -> None:
        """Adopt a new placement (the task notifies its machine)."""

    def set_parked(self, parked: bool) -> None:
        """Freeze/unfreeze the task (zero-core effective cpuset)."""


class CpusetController:
    """Assigns and resizes CPU masks for attached tasks."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine

    def set_cpus(self, task: PlaceableTask, cores: frozenset[int] | set[int]) -> None:
        """Pin ``task`` to exactly ``cores``; an empty set parks the task.

        A cgroup's ``cpuset.cpus`` cannot literally be emptied, so a
        controller that throttles a task to zero cores freezes it instead
        (SIGSTOP / the freezer controller). The simulated surface folds both
        into one call: ``set_cpus(task, frozenset())`` parks the task, and
        any non-empty mask unparks it again.

        The mask is validated against the machine topology: it must lie
        inside one OS-visible NUMA domain — a subdomain when SNC is enabled,
        a socket otherwise. A mask straddling domains would silently migrate
        part of the cgroup off the task's memory, which the real control
        plane never does; it is always a controller bug, so it raises
        :class:`~repro.errors.HostInterfaceError` instead of being accepted.
        """
        cores = frozenset(cores)
        if not cores:
            self.park(task)
            return
        total = self._machine.spec.total_cores
        bad = [c for c in cores if not 0 <= c < total]
        if bad:
            raise HostInterfaceError(f"cores out of range: {sorted(bad)}")
        self._check_domain(task, cores)
        if task.parked:
            task.set_parked(False)
        if cores != task.placement.cores:
            task.set_placement(task.placement.with_cores(cores))

    def _check_domain(self, task: PlaceableTask, cores: frozenset[int]) -> None:
        """Reject masks that straddle OS-visible NUMA domains."""
        topo = self._machine.topology
        if self._machine.snc_enabled:
            domains = {topo.subdomain_of_core(c) for c in cores}
            kind = "subdomains"
        else:
            domains = {topo.socket_of_core(c) for c in cores}
            kind = "sockets"
        if len(domains) > 1:
            raise HostInterfaceError(
                f"cpuset mask for task {task.task_id!r} straddles "
                f"{kind} {sorted(domains)}: {sorted(cores)}"
            )

    def park(self, task: PlaceableTask) -> None:
        """Freeze ``task``: no runnable cores until the next ``set_cpus``."""
        task.set_parked(True)

    def shrink(self, task: PlaceableTask, count: int = 1) -> int:
        """Remove up to ``count`` cores (highest ids first); returns removed.

        Never shrinks below one core — a cgroup must remain schedulable.
        """
        cores = sorted(task.placement.cores)
        removable = min(count, len(cores) - 1)
        if removable <= 0:
            return 0
        self.set_cpus(task, frozenset(cores[: len(cores) - removable]))
        return removable

    def grow(
        self, task: PlaceableTask, candidates: list[int], count: int = 1
    ) -> int:
        """Add up to ``count`` cores from ``candidates``; returns added."""
        current = set(task.placement.cores)
        added = 0
        for core in candidates:
            if added >= count:
                break
            if core not in current:
                current.add(core)
                added += 1
        if added:
            self.set_cpus(task, frozenset(current))
        return added
