"""Simulated perf-counter interface.

Kelp makes four measurements every control interval (Section IV-D):

* **socket memory bandwidth** — IMC CAS counters, summed per socket;
* **memory latency** — a loaded-latency proxy (occupancy/inserts ratio);
* **memory saturation** — the ``FAST_ASSERTED`` uncore event divided by
  elapsed cycles (fraction of time the distress signal was asserted);
* **high-priority subdomain bandwidth** — CAS counters of that subdomain's
  channel group only.

Counters are windowed: each named reader keeps its own last-read snapshot, so
multiple consumers (the policy loop, experiment recorders) can sample at
different frequencies without disturbing one another.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.machine import Machine
from repro.hw.telemetry import TelemetrySnapshot


@dataclass(frozen=True)
class PerfReading:
    """One windowed sample of the Kelp measurement set."""

    #: Window length, simulated seconds.
    elapsed: float
    #: Average bandwidth per socket, GB/s.
    socket_bandwidth_gbps: dict[int, float]
    #: Worst average loaded-latency factor per socket (>= 1 unloaded).
    socket_latency_factor: dict[int, float]
    #: Worst average FAST_ASSERTED fraction per socket, [0, 1].
    socket_saturation: dict[int, float]
    #: Average bandwidth per subdomain, GB/s.
    subdomain_bandwidth_gbps: dict[int, float]
    #: Average distress core-throttle factor per socket (diagnostics).
    socket_throttle: dict[int, float]


class PerfCounters:
    """Windowed reads over the machine's telemetry integrals."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._marks: dict[str, TelemetrySnapshot] = {}
        # Topology is immutable; freeze the per-socket subdomain tuples once
        # instead of re-deriving them on every windowed read.
        topo = machine.topology
        self._socket_subdomains: tuple[tuple[int, tuple[int, ...]], ...] = tuple(
            (socket_id, topo.subdomains_of_socket(socket_id))
            for socket_id in range(topo.num_sockets)
        )

    def read(self, reader: str = "default") -> PerfReading:
        """Sample all Kelp counters since this reader's previous call.

        The first call for a reader covers the window since t=0.
        """
        telemetry = self._machine.telemetry
        now = self._machine.sim.now
        previous = self._marks.get(reader)
        if previous is None:
            previous = TelemetrySnapshot()
        window = telemetry.window_since(previous, now)
        self._marks[reader] = telemetry.copy_snapshot()

        socket_bw: dict[int, float] = {}
        socket_lat: dict[int, float] = {}
        socket_sat: dict[int, float] = {}
        for socket_id, subdomains in self._socket_subdomains:
            socket_bw[socket_id] = window.bandwidth_of(subdomains)
            socket_lat[socket_id] = window.max_latency_factor(subdomains)
            socket_sat[socket_id] = window.max_saturation(subdomains)
        # The window's dicts are freshly built per read and never aliased, so
        # they can be handed to the (frozen) reading without a copy.
        return PerfReading(
            elapsed=window.elapsed,
            socket_bandwidth_gbps=socket_bw,
            socket_latency_factor=socket_lat,
            socket_saturation=socket_sat,
            subdomain_bandwidth_gbps=window.mc_bandwidth_gbps,
            socket_throttle=window.socket_throttle,
        )

    def read_kelp(
        self, reader: str, socket: int, hi_subdomain: int
    ) -> tuple[float, float, float, float, float]:
        """The four Kelp scalars (plus elapsed) since the reader's last call.

        Returns ``(socket_bw, socket_latency, saturation, hipri_bw,
        elapsed)`` for one socket — the exact fields
        :func:`repro.core.measurements.measure_node` and the fleet member
        sampler consume every control tick. Bit-identical to deriving them
        from :meth:`read` (same per-key delta/divide expressions, same
        summation and max order over the socket's subdomain tuple), but
        skips materializing the full per-socket/per-subdomain dicts — this
        is the hottest call in a day-long fleet replay. The reader's mark is
        a full snapshot, so mixing :meth:`read` and :meth:`read_kelp` on one
        reader name stays windowed correctly.
        """
        telemetry = self._machine.telemetry
        now = self._machine.sim.now
        telemetry.advance(now)
        current = telemetry.snapshot
        previous = self._marks.get(reader)
        self._marks[reader] = telemetry.copy_snapshot()
        subdomains = self._socket_subdomains[socket][1]
        if previous is None:
            prev_time = 0.0
            prev_bytes = prev_lat = prev_sat = _EMPTY
        else:
            prev_time = previous.time
            prev_bytes = previous.mc_bytes
            prev_lat = previous.mc_latency
            prev_sat = previous.mc_saturation
        elapsed = max(current.time - prev_time, 0.0)
        if elapsed <= 0:
            # Degenerate window: the documented defaults, as in window_since.
            return 0.0, 1.0, 0.0, 0.0, elapsed
        cur_bytes = current.mc_bytes
        cur_lat = current.mc_latency
        cur_sat = current.mc_saturation
        # Explicit loops, but the same accumulation order as the dict-built
        # path: ``sum()`` over the subdomain tuple starting from int 0, and
        # ``max()`` keeping the first maximal element.
        socket_bw = 0
        socket_latency = saturation = None
        for m in subdomains:
            socket_bw += (
                (cur_bytes[m] - prev_bytes.get(m, 0.0)) / elapsed
                if m in cur_bytes
                else 0.0
            )
            lat = (
                (cur_lat[m] - prev_lat.get(m, 0.0)) / elapsed
                if m in cur_lat
                else 1.0
            )
            if socket_latency is None or lat > socket_latency:
                socket_latency = lat
            sat = (
                (cur_sat[m] - prev_sat.get(m, 0.0)) / elapsed
                if m in cur_sat
                else 0.0
            )
            if saturation is None or sat > saturation:
                saturation = sat
        hipri_bw = (
            (cur_bytes[hi_subdomain] - prev_bytes.get(hi_subdomain, 0.0))
            / elapsed
            if hi_subdomain in cur_bytes
            else 0.0
        )
        return socket_bw, socket_latency, saturation, hipri_bw, elapsed

    def reset(self, reader: str = "default") -> None:
        """Forget a reader's mark; its next read starts a fresh window."""
        self._marks.pop(reader, None)


#: Shared empty previous-integral mapping for first reads (never mutated).
_EMPTY: dict[int, float] = {}
