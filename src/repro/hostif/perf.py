"""Simulated perf-counter interface.

Kelp makes four measurements every control interval (Section IV-D):

* **socket memory bandwidth** — IMC CAS counters, summed per socket;
* **memory latency** — a loaded-latency proxy (occupancy/inserts ratio);
* **memory saturation** — the ``FAST_ASSERTED`` uncore event divided by
  elapsed cycles (fraction of time the distress signal was asserted);
* **high-priority subdomain bandwidth** — CAS counters of that subdomain's
  channel group only.

Counters are windowed: each named reader keeps its own last-read snapshot, so
multiple consumers (the policy loop, experiment recorders) can sample at
different frequencies without disturbing one another.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.machine import Machine
from repro.hw.telemetry import TelemetrySnapshot


@dataclass(frozen=True)
class PerfReading:
    """One windowed sample of the Kelp measurement set."""

    #: Window length, simulated seconds.
    elapsed: float
    #: Average bandwidth per socket, GB/s.
    socket_bandwidth_gbps: dict[int, float]
    #: Worst average loaded-latency factor per socket (>= 1 unloaded).
    socket_latency_factor: dict[int, float]
    #: Worst average FAST_ASSERTED fraction per socket, [0, 1].
    socket_saturation: dict[int, float]
    #: Average bandwidth per subdomain, GB/s.
    subdomain_bandwidth_gbps: dict[int, float]
    #: Average distress core-throttle factor per socket (diagnostics).
    socket_throttle: dict[int, float]


class PerfCounters:
    """Windowed reads over the machine's telemetry integrals."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._marks: dict[str, TelemetrySnapshot] = {}

    def read(self, reader: str = "default") -> PerfReading:
        """Sample all Kelp counters since this reader's previous call.

        The first call for a reader covers the window since t=0.
        """
        telemetry = self._machine.telemetry
        now = self._machine.sim.now
        previous = self._marks.get(reader)
        if previous is None:
            previous = TelemetrySnapshot()
        window = telemetry.window_since(previous, now)
        self._marks[reader] = telemetry.copy_snapshot()

        topo = self._machine.topology
        socket_bw: dict[int, float] = {}
        socket_lat: dict[int, float] = {}
        socket_sat: dict[int, float] = {}
        for socket_id in range(topo.num_sockets):
            subdomains = topo.subdomains_of_socket(socket_id)
            socket_bw[socket_id] = window.bandwidth_of(subdomains)
            socket_lat[socket_id] = window.max_latency_factor(subdomains)
            socket_sat[socket_id] = window.max_saturation(subdomains)
        return PerfReading(
            elapsed=window.elapsed,
            socket_bandwidth_gbps=socket_bw,
            socket_latency_factor=socket_lat,
            socket_saturation=socket_sat,
            subdomain_bandwidth_gbps=dict(window.mc_bandwidth_gbps),
            socket_throttle=dict(window.socket_throttle),
        )

    def reset(self, reader: str = "default") -> None:
        """Forget a reader's mark; its next read starts a fresh window."""
        self._marks.pop(reader, None)
