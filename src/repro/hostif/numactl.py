"""numactl-style memory policy: bind a task's pages to NUMA nodes.

Node numbering follows the kernel's view: with SNC **off** the nodes are the
sockets; with SNC **on** each subdomain is a node. Internally the library
always routes by subdomain, so this module translates OS-level node ids into
subdomain routing weights for the task's placement.
"""

from __future__ import annotations

from repro.errors import HostInterfaceError
from repro.hostif.cpuset import PlaceableTask
from repro.hw.machine import Machine


class NumaPolicy:
    """Apply ``membind``/``interleave`` policies to simulated tasks."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine

    def visible_nodes(self) -> list[int]:
        """OS-visible NUMA node ids under the current SNC setting."""
        topo = self._machine.topology
        if self._machine.snc_enabled:
            return list(range(topo.num_subdomains))
        return list(range(topo.num_sockets))

    def membind(self, task: PlaceableTask, nodes: list[int]) -> None:
        """Bind the task's memory to ``nodes`` (interleaved across them)."""
        weights = self._weights_for(nodes)
        if weights != task.placement.mem_weights:
            task.set_placement(task.placement.with_mem_weights(weights))

    def membind_weighted(
        self, task: PlaceableTask, node_weights: dict[int, float]
    ) -> None:
        """Bind with explicit per-node weights (for remote-traffic sweeps)."""
        subdomain_weights: dict[int, float] = {}
        for node, weight in node_weights.items():
            for subdomain, sub_weight in self._node_subdomains(node).items():
                subdomain_weights[subdomain] = (
                    subdomain_weights.get(subdomain, 0.0) + weight * sub_weight
                )
        task.set_placement(task.placement.with_mem_weights(subdomain_weights))

    # ------------------------------------------------------------ helpers
    def _node_subdomains(self, node: int) -> dict[int, float]:
        topo = self._machine.topology
        if self._machine.snc_enabled:
            if not 0 <= node < topo.num_subdomains:
                raise HostInterfaceError(f"NUMA node {node} out of range (SNC on)")
            return {node: 1.0}
        if not 0 <= node < topo.num_sockets:
            raise HostInterfaceError(f"NUMA node {node} out of range (SNC off)")
        return topo.socket_memory_weights(node)

    def _weights_for(self, nodes: list[int]) -> dict[int, float]:
        if not nodes:
            raise HostInterfaceError("membind needs at least one node")
        weights: dict[int, float] = {}
        share = 1.0 / len(nodes)
        for node in nodes:
            for subdomain, sub_weight in self._node_subdomains(node).items():
                weights[subdomain] = weights.get(subdomain, 0.0) + share * sub_weight
        return weights
