"""Simulated Linux host-control interfaces.

Kelp on real hardware actuates and observes through a handful of kernel
surfaces: perf uncore counters (IMC bandwidth, the ``FAST_ASSERTED`` distress
event), MSR ``0x1A4`` (per-core L2 prefetcher bits), cgroup cpusets (CPU
masks), resctrl (CAT way masks and MBA throttling), and numactl memory
policies. This package reproduces those surfaces with the same shapes and
granularity, backed by the :class:`~repro.hw.machine.Machine` model, so the
runtime in :mod:`repro.core` reads like the production implementation.
"""

from repro.hostif.cpuset import CpusetController
from repro.hostif.msr import MsrInterface, PREFETCH_DISABLE_ALL, PREFETCH_ENABLE_ALL
from repro.hostif.numactl import NumaPolicy
from repro.hostif.perf import PerfCounters, PerfReading
from repro.hostif.resctrl import ResctrlFs

__all__ = [
    "CpusetController",
    "MsrInterface",
    "NumaPolicy",
    "PREFETCH_DISABLE_ALL",
    "PREFETCH_ENABLE_ALL",
    "PerfCounters",
    "PerfReading",
    "ResctrlFs",
]
