"""resctrl filesystem: CAT way masks and MBA throttling per class of service.

Kelp dedicates an LLC partition to the accelerated task through Intel Cache
Allocation Technology; the Section VI-D hardware-QoS estimate additionally
uses Memory Bandwidth Allocation-style request throttling. Both are exposed
the way resctrl does: per-CLOS ``L3`` bitmasks and ``MB`` percentages.
"""

from __future__ import annotations

from repro.errors import HostInterfaceError
from repro.hostif.cpuset import PlaceableTask
from repro.hw.llc import full_mask
from repro.hw.machine import Machine


class ResctrlFs:
    """Per-machine resctrl state: CLOS groups with L3 masks and MB caps."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._groups: set[int] = {0}

    @property
    def groups(self) -> set[int]:
        """Currently-defined classes of service."""
        return set(self._groups)

    def create_group(self, clos: int) -> None:
        """Define a new class of service (idempotent)."""
        if clos < 0:
            raise HostInterfaceError("clos must be non-negative")
        self._groups.add(clos)

    def set_l3_mask(self, clos: int, mask: int, socket: int | None = None) -> None:
        """Set the CAT way mask for ``clos`` (all sockets unless specified)."""
        self._require_group(clos)
        sockets = (
            [socket]
            if socket is not None
            else list(range(self._machine.topology.num_sockets))
        )
        for socket_id in sockets:
            self._machine.llcs[socket_id].set_clos_mask(clos, mask)
        self._machine.notify_change()

    def l3_mask(self, clos: int, socket: int = 0) -> int:
        """Read the way mask of ``clos`` on ``socket``."""
        self._require_group(clos)
        return self._machine.llcs[socket].clos_mask(clos)

    def mb_percent(self, clos: int) -> int | None:
        """Read back the MB% cap of ``clos`` (``None`` when uncapped)."""
        self._require_group(clos)
        cap = self._machine.solver.mba_caps.get(clos)
        return None if cap is None else round(cap * 100)

    def set_mb_percent(self, clos: int, percent: int) -> None:
        """Set MBA throttling: cap the CLOS's offered demand at ``percent``.

        Real MBA exposes coarse steps (10–100 %); we validate the same range.
        """
        self._require_group(clos)
        if not 10 <= percent <= 100:
            raise HostInterfaceError("MB percent must be within [10, 100]")
        self._machine.solver.mba_caps[clos] = percent / 100.0
        self._machine.notify_change()

    def assign(self, task: PlaceableTask, clos: int) -> None:
        """Move a task into a class of service."""
        self._require_group(clos)
        if task.placement.clos != clos:
            task.set_placement(task.placement.with_clos(clos))

    def dedicate_ways(self, clos: int, ways: int, socket: int | None = None) -> None:
        """Give ``clos`` an exclusive partition of the lowest ``ways`` ways
        and shrink CLOS 0 (the default group) to the remainder.

        This is the CAT setup the paper uses: the ML task gets a dedicated
        partition; everything else shares what is left.
        """
        self._require_group(clos)
        spec = self._machine.spec.sockets[0].llc
        if not 0 < ways < spec.ways:
            raise HostInterfaceError(
                f"dedicated ways must be within (0, {spec.ways})"
            )
        exclusive = (1 << ways) - 1
        rest = full_mask(spec) & ~exclusive
        self.set_l3_mask(clos, exclusive, socket)
        self.set_l3_mask(0, rest, socket)

    def reset(self) -> None:
        """Return every socket's LLC to the default single-group state."""
        for llc in self._machine.llcs.values():
            llc.reset()
        self._machine.solver.mba_caps.clear()
        self._groups = {0}
        self._machine.notify_change()

    def _require_group(self, clos: int) -> None:
        if clos not in self._groups:
            raise HostInterfaceError(f"clos {clos} does not exist; create it first")
