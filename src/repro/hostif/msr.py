"""MSR interface: per-core L2/L1 prefetcher control (MSR 0x1A4).

Intel documents four prefetcher-disable bits in ``MSR_MISC_FEATURE_CONTROL``
(0x1A4): L2 hardware prefetcher, L2 adjacent-line prefetcher, DCU streamer
and DCU IP prefetcher. Kelp toggles all four together per core; the hardware
model keys its traffic/speed interpolation off whether *any* prefetching is
active on a core, so we expose the documented register layout but collapse it
to a per-core enable internally.
"""

from __future__ import annotations

from repro.errors import HostInterfaceError
from repro.hw.machine import Machine

#: Address of MSR_MISC_FEATURE_CONTROL.
MSR_MISC_FEATURE_CONTROL = 0x1A4
#: All four prefetcher-disable bits set.
PREFETCH_DISABLE_ALL = 0b1111
#: All prefetchers enabled (no disable bits).
PREFETCH_ENABLE_ALL = 0b0000


class MsrInterface:
    """Read/write the prefetcher-control MSR on simulated cores."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._raw: dict[int, int] = {}
        # The spec is frozen, so the core-range bound never changes; caching
        # it keeps per-tick MSR read-backs off the sum-over-sockets path.
        self._total_cores = machine.spec.total_cores

    def rdmsr(self, core: int, address: int) -> int:
        """Read an MSR; only ``0x1A4`` is modeled."""
        self._check(core, address)
        return self._raw.get(core, PREFETCH_ENABLE_ALL)

    def wrmsr(self, core: int, address: int, value: int) -> None:
        """Write an MSR; any disable bit set turns the core's prefetch off."""
        self._check(core, address)
        if not 0 <= value <= 0b1111:
            raise HostInterfaceError(f"value {value:#x} out of range for 0x1A4")
        self._raw[core] = value
        enabled = value == PREFETCH_ENABLE_ALL
        if self._machine.prefetchers.is_enabled(core) != enabled:
            self._machine.prefetchers.set_enabled(core, enabled)
            self._machine.notify_change()

    def set_prefetchers(self, core: int, enabled: bool) -> None:
        """Convenience wrapper: enable/disable all prefetchers on ``core``."""
        self.wrmsr(
            core,
            MSR_MISC_FEATURE_CONTROL,
            PREFETCH_ENABLE_ALL if enabled else PREFETCH_DISABLE_ALL,
        )

    def prefetchers_enabled(self, core: int) -> bool:
        """Whether all prefetchers are active on ``core``."""
        return self.rdmsr(core, MSR_MISC_FEATURE_CONTROL) == PREFETCH_ENABLE_ALL

    def prefetcher_states(self, cores: tuple[int, ...]) -> list[bool]:
        """Per-core prefetcher state for an ascending run of core ids.

        Batch form of :meth:`prefetchers_enabled` for the per-tick MSR
        read-back dedup: one range check instead of one rdmsr round-trip
        per core.
        """
        if cores and not (0 <= cores[0] and cores[-1] < self._total_cores):
            raise HostInterfaceError("core id out of range")
        raw_get = self._raw.get
        return [
            raw_get(core, PREFETCH_ENABLE_ALL) == PREFETCH_ENABLE_ALL
            for core in cores
        ]

    def enable_all(self) -> None:
        """Restore prefetching on every core (teardown between experiments)."""
        self._raw.clear()
        self._machine.prefetchers.enable_all()
        self._machine.notify_change()

    def _check(self, core: int, address: int) -> None:
        if address != MSR_MISC_FEATURE_CONTROL:
            raise HostInterfaceError(f"MSR {address:#x} is not modeled")
        if not 0 <= core < self._total_cores:
            raise HostInterfaceError(f"core {core} out of range")
