"""Deterministic process-pool sweep runner for the experiment suite.

Every per-figure driver is a sweep: a list of independent *points* (one
colocation run, one sensitivity placement, one fleet block) mapped through a
pure evaluation function. This module provides one primitive —
:func:`run_points` — that evaluates such a sweep either serially or on a
``ProcessPoolExecutor``, with three guarantees:

1. **Determinism.** Before each point, the worker's global RNGs (``random``
   and legacy ``numpy.random``) are re-seeded from ``(base_seed, index)``.
   The serial path applies *the same* re-seeding, so ``jobs=1`` and
   ``jobs=8`` produce bit-identical results for the same points.
2. **Order.** Results come back in point order, never completion order.
3. **Purity requirements.** The evaluation function must be a module-level
   callable (picklable) and must not depend on mutable process-global state
   other than the re-seeded RNGs; experiment drivers satisfy this because a
   point builds its own ``Simulator``/``Machine`` from scratch.

``jobs=None`` falls back to the ``REPRO_JOBS`` environment variable (then
to 1), so wrapping scripts can parallelize a whole pipeline without
threading the flag through every call site.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExperimentError

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"

#: Default base seed mixed into per-point RNG re-seeding.
DEFAULT_BASE_SEED = 0


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalize a ``jobs`` request: explicit value > ``REPRO_JOBS`` > 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV}={raw!r} is not an integer"
                ) from None
        else:
            jobs = 1
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


def point_seed(base_seed: int, index: int) -> int:
    """The deterministic 32-bit seed for point ``index`` of a sweep."""
    # SplitMix-style mix keeps nearby (seed, index) pairs uncorrelated.
    x = (base_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (
        (1 << 64) - 1
    )
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 29
    return x & 0xFFFFFFFF


def _reseed(base_seed: int, index: int) -> None:
    """Re-seed the global RNGs for one point (identical serial/parallel)."""
    seed = point_seed(base_seed, index)
    random.seed(seed)
    try:  # numpy is a hard dependency today, but stay import-tolerant.
        import numpy as np

        np.random.seed(seed)
    except ImportError:  # pragma: no cover
        pass


def _eval_point(
    fn: Callable[[Any], Any], index: int, point: Any, base_seed: int
) -> Any:
    """Worker body: re-seed, then evaluate one point."""
    _reseed(base_seed, index)
    return fn(point)


def run_points(
    fn: Callable[[Any], Any],
    points: Sequence[Any] | Iterable[Any],
    jobs: int | None = None,
    base_seed: int = DEFAULT_BASE_SEED,
) -> list[Any]:
    """Evaluate ``fn`` over ``points``, serially or on a process pool.

    ``fn`` must be a module-level (picklable) callable taking one point.
    Results are returned in point order; the per-point RNG re-seeding makes
    the output independent of ``jobs``.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(points) <= 1:
        return [
            _eval_point(fn, index, point, base_seed)
            for index, point in enumerate(points)
        ]
    workers = min(jobs, len(points))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_eval_point, fn, index, point, base_seed)
            for index, point in enumerate(points)
        ]
        return [f.result() for f in futures]
