"""Deterministic persistent-worker sweep engine for the experiment suite.

Every per-figure driver is a sweep: a list of independent *points* (one
colocation run, one sensitivity placement, one fleet block) mapped through a
pure evaluation function. This module provides one primitive —
:func:`run_points` — that evaluates such a sweep either serially or on a
persistent :class:`SweepPool` of worker processes, with four guarantees:

1. **Determinism.** Before each point, the worker's global RNGs (``random``
   and legacy ``numpy.random``) are re-seeded from ``(base_seed, index)``
   where ``index`` is the point's *absolute* position in the sweep. The
   serial path applies *the same* re-seeding, so ``jobs=1`` and ``jobs=8``
   (and any chunk size) produce bit-identical results for the same points.
2. **Order.** Results come back in point order, never completion order.
3. **Purity requirements.** The evaluation function must be a module-level
   callable (picklable) and must not depend on mutable process-global state
   other than the re-seeded RNGs; experiment drivers satisfy this because a
   point builds its own ``Simulator``/``Machine`` from scratch.
4. **Warm workers.** Workers persist across :func:`run_points` calls (the
   pool is reused while the worker count and shared context are unchanged),
   so process-global memo state — most importantly the contention solver's
   shared solve cache — survives from one point, chunk, and sweep to the
   next instead of being rebuilt per point.

Points are shipped to workers in contiguous *chunks* (amortizing pickling
and scheduling overhead), and at most ``2 x workers`` chunks are in flight
at once so huge sweeps don't materialize their whole argument list in the
executor's call queue.

``jobs=None`` falls back to the ``REPRO_JOBS`` environment variable (then
to 1), so wrapping scripts can parallelize a whole pipeline without
threading the flag through every call site. Single-core hosts fall back to
the serial path automatically: a process pool on one CPU only adds
serialization overhead.

Setting ``REPRO_PROFILE=1`` also forces the serial path so that the
per-experiment :func:`maybe_profiled` cProfile hook observes the real work
in-process rather than an idle parent waiting on futures.
"""

from __future__ import annotations

import atexit
import cProfile
import os
import random
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ExperimentError

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the automatic chunk size.
CHUNK_ENV = "REPRO_SWEEP_CHUNK"

#: Environment variable enabling the opt-in cProfile hook (and forcing the
#: serial path so the profile captures the actual point evaluations).
PROFILE_ENV = "REPRO_PROFILE"

#: Environment variable naming the directory ``.prof`` dumps land in
#: (defaults to the current working directory).
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

#: Default base seed mixed into per-point RNG re-seeding.
DEFAULT_BASE_SEED = 0

#: Upper bound on the automatic chunk size.
_MAX_AUTO_CHUNK = 64

#: In-flight chunk budget per worker (backpressure bound).
_INFLIGHT_PER_WORKER = 2


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalize a ``jobs`` request: explicit value > ``REPRO_JOBS`` > 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV}={raw!r} is not an integer"
                ) from None
        else:
            jobs = 1
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


def profiling_enabled() -> bool:
    """Whether the opt-in ``REPRO_PROFILE=1`` cProfile hook is active."""
    return os.environ.get(PROFILE_ENV, "").strip() in {"1", "true", "yes", "on"}


@contextmanager
def maybe_profiled(name: str) -> Iterator[None]:
    """Profile the enclosed block when ``REPRO_PROFILE=1``.

    Dumps ``<name>.prof`` (pstats format) into ``REPRO_PROFILE_DIR`` or the
    current working directory. A no-op when profiling is disabled, so hot
    paths can wrap themselves unconditionally.
    """
    if not profiling_enabled():
        yield
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        out_dir = os.environ.get(PROFILE_DIR_ENV, "").strip() or os.getcwd()
        os.makedirs(out_dir, exist_ok=True)
        profile.dump_stats(os.path.join(out_dir, f"{name}.prof"))


def point_seed(base_seed: int, index: int) -> int:
    """The deterministic 32-bit seed for point ``index`` of a sweep."""
    # SplitMix-style mix keeps nearby (seed, index) pairs uncorrelated.
    x = (base_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (
        (1 << 64) - 1
    )
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 29
    return x & 0xFFFFFFFF


def _reseed(base_seed: int, index: int) -> None:
    """Re-seed the global RNGs for one point (identical serial/parallel)."""
    seed = point_seed(base_seed, index)
    random.seed(seed)
    try:  # numpy is a hard dependency today, but stay import-tolerant.
        import numpy as np

        np.random.seed(seed)
    except ImportError:  # pragma: no cover
        pass


def _eval_point(
    fn: Callable[[Any], Any], index: int, point: Any, base_seed: int
) -> Any:
    """Worker body: re-seed, then evaluate one point."""
    _reseed(base_seed, index)
    return fn(point)


# --------------------------------------------------------------------------
# Worker-side shared context
# --------------------------------------------------------------------------

#: Immutable context shipped once per worker by the pool initializer (and
#: installed by the serial path for symmetry). ``None`` when no sweep set one.
_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    """Pool initializer: install the sweep's shared immutable context."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def sweep_context() -> Any:
    """The shared context of the active sweep (``None`` outside one).

    Evaluation functions use this to reach large shared *read-only* inputs
    (a spec table, a trace, a config object) that would otherwise be pickled
    into every chunk; the pool ships it once per worker instead.
    """
    return _WORKER_CONTEXT


def _eval_chunk(
    fn: Callable[[Any], Any],
    start: int,
    points: Sequence[Any],
    base_seed: int,
) -> list[Any]:
    """Worker body: evaluate one contiguous chunk of points.

    Each point is re-seeded from its *absolute* sweep index, so results are
    independent of how the sweep was chunked.
    """
    return [
        _eval_point(fn, start + offset, point, base_seed)
        for offset, point in enumerate(points)
    ]


# --------------------------------------------------------------------------
# The persistent pool
# --------------------------------------------------------------------------


class SweepPool:
    """A reusable pool of warm worker processes for chunked sweeps.

    Workers are spawned once and survive across :meth:`map_points` calls, so
    process-global memo state (the solver's shared solve cache above all)
    stays warm from sweep to sweep. An optional immutable ``context`` object
    is shipped to each worker exactly once via the pool initializer and is
    readable through :func:`sweep_context`.
    """

    def __init__(self, workers: int, context: Any = None) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.context = context
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(context,),
        )

    # ------------------------------------------------------------- mapping
    def map_points(
        self,
        fn: Callable[[Any], Any],
        points: Sequence[Any] | Iterable[Any],
        base_seed: int = DEFAULT_BASE_SEED,
        chunk_size: int | None = None,
    ) -> list[Any]:
        """Evaluate ``fn`` over ``points`` on the pool, in point order.

        Points are shipped in contiguous chunks; at most ``2 x workers``
        chunks are in flight at a time, so arbitrarily long sweeps exert
        bounded memory pressure on the executor's call queue.
        """
        if self._pool is None:
            raise ExperimentError("SweepPool is closed")
        points = list(points)
        n = len(points)
        if n == 0:
            return []
        size = self._resolve_chunk_size(n, chunk_size)
        results: list[Any] = [None] * n
        starts = iter(range(0, n, size))
        inflight: deque[tuple[int, Future]] = deque()

        def submit_next() -> bool:
            start = next(starts, None)
            if start is None:
                return False
            inflight.append(
                (
                    start,
                    self._pool.submit(
                        _eval_chunk, fn, start, points[start : start + size],
                        base_seed,
                    ),
                )
            )
            return True

        budget = self.workers * _INFLIGHT_PER_WORKER
        while len(inflight) < budget and submit_next():
            pass
        while inflight:
            start, future = inflight.popleft()
            chunk_results = future.result()
            results[start : start + len(chunk_results)] = chunk_results
            submit_next()
        return results

    def _resolve_chunk_size(self, n_points: int, chunk_size: int | None) -> int:
        """Explicit size > ``REPRO_SWEEP_CHUNK`` > automatic sizing."""
        if chunk_size is None:
            raw = os.environ.get(CHUNK_ENV, "").strip()
            if raw:
                try:
                    chunk_size = int(raw)
                except ValueError:
                    raise ExperimentError(
                        f"{CHUNK_ENV}={raw!r} is not an integer"
                    ) from None
        if chunk_size is not None:
            if chunk_size < 1:
                raise ExperimentError(
                    f"chunk size must be >= 1, got {chunk_size}"
                )
            return chunk_size
        # Aim for ~4 chunks per worker (load-balance slack without
        # per-point scheduling overhead), capped for cache friendliness.
        target = -(-n_points // (self.workers * 4))
        return max(1, min(_MAX_AUTO_CHUNK, target))

    # ----------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._pool is None

    def close(self) -> None:
        """Shut the worker processes down. Idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: The process-wide reusable pool (single entry: consecutive sweeps almost
#: always share one worker count and context).
_ACTIVE_POOL: SweepPool | None = None


def get_pool(workers: int, context: Any = None) -> SweepPool:
    """The shared persistent pool, recreated only when its shape changes.

    Reuses the live pool while ``workers`` and ``context`` (by identity)
    match; otherwise the old pool is shut down and a fresh one spawned.
    """
    global _ACTIVE_POOL
    pool = _ACTIVE_POOL
    if (
        pool is not None
        and not pool.closed
        and pool.workers == workers
        and pool.context is context
    ):
        return pool
    if pool is not None:
        pool.close()
    _ACTIVE_POOL = SweepPool(workers, context)
    return _ACTIVE_POOL


def shutdown_pool() -> None:
    """Shut down the shared persistent pool (tests, interpreter exit)."""
    global _ACTIVE_POOL
    if _ACTIVE_POOL is not None:
        _ACTIVE_POOL.close()
        _ACTIVE_POOL = None


atexit.register(shutdown_pool)


# --------------------------------------------------------------------------
# The sweep primitive
# --------------------------------------------------------------------------


def run_points(
    fn: Callable[[Any], Any],
    points: Sequence[Any] | Iterable[Any],
    jobs: int | None = None,
    base_seed: int = DEFAULT_BASE_SEED,
    chunk_size: int | None = None,
    context: Any = None,
    force_pool: bool = False,
) -> list[Any]:
    """Evaluate ``fn`` over ``points``, serially or on the persistent pool.

    ``fn`` must be a module-level (picklable) callable taking one point.
    Results are returned in point order; the per-point RNG re-seeding makes
    the output bit-identical for every ``jobs`` and ``chunk_size``.

    Falls back to the serial path when any of these hold (a process pool
    would only add overhead, never throughput):

    - ``jobs`` resolves to 1, or the sweep has at most one point;
    - the host has a single CPU (unless ``force_pool``, used by tests);
    - ``REPRO_PROFILE=1`` is set (the profile must see the real work).

    ``context`` is an immutable object shipped once per worker (and
    installed process-locally on the serial path) — see :func:`sweep_context`.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    cpus = os.cpu_count() or 1
    serial = (
        jobs == 1
        or len(points) <= 1
        or (cpus == 1 and not force_pool)
        or profiling_enabled()
    )
    if serial:
        global _WORKER_CONTEXT
        previous = _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            return [
                _eval_point(fn, index, point, base_seed)
                for index, point in enumerate(points)
            ]
        finally:
            _WORKER_CONTEXT = previous
    workers = min(jobs, len(points))
    pool = get_pool(workers, context)
    return pool.map_points(fn, points, base_seed=base_seed, chunk_size=chunk_size)
