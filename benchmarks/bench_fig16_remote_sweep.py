"""Fig 16 benchmark: Cloud TPU remote-memory locality sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig16_remote_sweep import format_fig16, run_fig16


def test_fig16_cnn1(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig16("cnn1", duration=30.0))
    print()
    print(format_fig16(result))
    _assert_shape(result, min_peak=2.0)


def test_fig16_cnn2(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig16("cnn2", duration=30.0))
    print()
    print(format_fig16(result))
    # CNN2 calibrates as less interference-sensitive than CNN1 throughout
    # (Figs 5/7), so its remote sweep peaks lower than the paper's ~2.5x;
    # the monotone shape and remote>local ordering are the checked claims.
    _assert_shape(result, min_peak=1.5)


def _assert_shape(result, min_peak: float) -> None:
    # Slowdown grows as more of the antagonist's data lands on the ML
    # socket (each thread-locality series is monotone in data locality).
    for series in result.slowdown.values():
        assert all(a <= b + 0.05 for a, b in zip(series, series[1:]))
    # Remote threads hitting local data hurt more than local threads
    # (remote traffic worse than local interference).
    fully_remote = result.slowdown[0.0][-1]
    fully_local = result.slowdown[1.0][-1]
    assert fully_remote > fully_local
    # Paper: up to ~2.5-3x slowdown on this platform.
    assert min_peak <= result.max_slowdown() <= 4.5
