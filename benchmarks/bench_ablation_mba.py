"""Ablation benchmark: MBA rate throttling vs CoreThrottle vs Kelp."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_mba import format_ablation_mba, run_ablation_mba


def test_ablation_mba(benchmark) -> None:
    result = run_once(benchmark, lambda: run_ablation_mba(duration=25.0))
    print()
    print(format_ablation_mba(result))
    # MBA protects the ML task in CT's ballpark...
    assert abs(result.ml_avg["MBA"] - result.ml_avg["CT"]) < 0.15
    # ...but its rate controller also throttles the core-to-LLC path, so
    # the low-priority tier keeps less throughput than under CT.
    assert result.cpu_hmean["MBA"] < result.cpu_hmean["CT"]
    # Kelp beats both on ML performance.
    assert result.ml_avg["KP"] > result.ml_avg["MBA"]
    assert result.ml_avg["KP"] > result.ml_avg["CT"]
