"""Ablation benchmark: backfilling (the KP-SD -> KP delta)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_backfill import (
    format_ablation_backfill,
    run_ablation_backfill,
)


def test_ablation_backfill(benchmark) -> None:
    result = run_once(benchmark, lambda: run_ablation_backfill(duration=25.0))
    print()
    print(format_ablation_backfill(result))
    for key in result.ml_avg:
        # Backfilling recovers CPU throughput...
        assert result.cpu_hmean[key]["KP"] > result.cpu_hmean[key]["KP-SD"]
        # ...at only a small ML cost (paper: ~4%).
        assert (
            result.ml_avg[key]["KP"]
            >= result.ml_avg[key]["KP-SD"] - 0.06
        )
