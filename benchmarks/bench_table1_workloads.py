"""Table I benchmark: workload/platform characterization."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table1_workloads import format_table1, run_table1


def test_table1_workloads(benchmark) -> None:
    rows = run_once(benchmark, run_table1)
    print()
    print(format_table1(rows))
    by_name = {r.name: r for r in rows}
    assert set(by_name) == {"rnn1", "cnn1", "cnn2", "cnn3"}
    for name, row in by_name.items():
        assert row.cpu_intensity == row.paper_cpu_intensity, name
        assert row.memory_intensity == row.paper_memory_intensity, name
    assert by_name["rnn1"].interaction == "Beam search"
    assert by_name["cnn3"].interaction == "Parameter server"
