"""Ablation benchmark: tail amplification across the PS fan-out."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_tail import format_ablation_tail, run_ablation_tail


def test_ablation_tail(benchmark) -> None:
    result = run_once(benchmark, lambda: run_ablation_tail(duration=25.0))
    print()
    print(format_ablation_tail(result))
    # The lock-step barrier amplifies node-level interference with fan-out.
    assert result.bl_slowdown == sorted(result.bl_slowdown)
    # At wide fan-outs, nearly every step hits an interfered shard...
    assert result.any_interfered[-1] > 0.95
    # ...so the unmanaged service approaches the full per-node stretch.
    assert result.bl_slowdown[-1] > 0.85 * result.bl_stretch
    # Kelp caps the per-node stretch, and the cap survives amplification.
    assert result.kp_slowdown[-1] < result.bl_slowdown[-1] - 0.3
