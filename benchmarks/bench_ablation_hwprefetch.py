"""Ablation benchmark: hardware vs software prefetcher QoS reaction time."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_hwprefetch import (
    format_ablation_hwprefetch,
    run_ablation_hwprefetch,
)


def test_ablation_hwprefetch(benchmark) -> None:
    result = run_once(benchmark, run_ablation_hwprefetch)
    print()
    print(format_ablation_hwprefetch(result))
    # Both mechanisms converge to strong steady-state protection...
    assert result.software.steady_perf > 0.85
    assert result.hardware.steady_perf > 0.95
    # ...but the sampled software loop eats the backpressure for up to one
    # interval during the transient, while hardware reacts immediately
    # (Section VI-B's argument for integrating this into the prefetchers).
    assert result.hardware.transient_perf > result.software.transient_perf + 0.15
    assert result.software.transient_perf < 0.85
