"""Ablation benchmark: the Section VI-D hardware-QoS estimate."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_hwqos import (
    format_ablation_hwqos,
    run_ablation_hwqos,
)


def test_ablation_hwqos(benchmark) -> None:
    result = run_once(benchmark, lambda: run_ablation_hwqos(duration=25.0))
    print()
    print(format_ablation_hwqos(result))
    # The paper's estimate: fine-grained hardware QoS achieves ML
    # performance at least Subdomain-level while exceeding Kelp's CPU
    # throughput (no fragmentation, full channel utilization).
    assert result.ml_average("HW-QOS") >= result.ml_average("KP-SD") - 0.05
    assert result.cpu_hmean("HW-QOS") >= result.cpu_hmean("KP")
