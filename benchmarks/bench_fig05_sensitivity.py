"""Fig 5 benchmark: workload sensitivity to LLC vs DRAM interference."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig05_sensitivity import format_fig05, run_fig05


def test_fig05_sensitivity(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig05(duration=30.0))
    print()
    print(format_fig05(result))
    # Paper: LLC ~14% average loss, DRAM a dramatic ~40%; CNN1 worst.
    assert 0.78 <= result.llc_average <= 0.93
    assert 0.50 <= result.dram_average <= 0.70
    assert result.dram_average < result.llc_average
    assert result.dram["cnn1"] == min(result.dram.values())
