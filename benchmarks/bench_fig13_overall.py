"""Fig 13 benchmark: overall ML and CPU slowdown across all mixes."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig13_overall import format_fig13, run_fig13


def test_fig13_overall(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig13(duration=30.0))
    print()
    print(format_fig13(result))
    bl_slowdown = result.ml_slowdown_average("BL")
    kp_slowdown = result.ml_slowdown_average("KP")
    ct_slowdown = result.ml_slowdown_average("CT")
    sd_slowdown = result.ml_slowdown_average("KP-SD")
    # Paper: Kelp cuts ML slowdown dramatically vs Baseline (-43%)...
    assert kp_slowdown < 0.75 * bl_slowdown
    # ...beats CoreThrottle on ML (-7%) at comparable CPU throughput...
    assert kp_slowdown < ct_slowdown
    assert (
        result.cpu_throughput_hmean("KP")
        > 0.85 * result.cpu_throughput_hmean("CT")
    )
    # ...and trades a little ML (vs Subdomain) for much more CPU (+19%).
    assert kp_slowdown >= sd_slowdown - 0.02
    assert (
        result.cpu_throughput_hmean("KP")
        > 1.10 * result.cpu_throughput_hmean("KP-SD")
    )
