"""Fig 10 benchmark: RNN1 + CPUML memory-pressure sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig10_rnn1_cpuml import format_fig10, run_fig10


def test_fig10_rnn1_cpuml(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig10(duration=30.0))
    print()
    print(format_fig10(result))
    # Fig 10a: BL QPS declines with thread count; subdomain configurations
    # hold QPS near standalone (paper: KP-SD ~0%, KP -5%).
    assert result.qps["BL"][-1] < 0.9
    assert result.qps_average("KP-SD") > 0.95
    assert result.qps_average("KP") > 0.93
    assert result.qps_average("CT") >= result.qps_average("BL")
    # Fig 10b: tails track the same ordering.
    assert result.tail_average("KP") < result.tail_average("BL")
    # Fig 10c: KP-SD pays the largest CPUML cost; backfilling recovers it
    # (paper: -33% vs -13%).
    assert result.cpu_harmonic_mean("KP-SD") < result.cpu_harmonic_mean("KP")
    assert result.cpu_harmonic_mean("KP") <= result.cpu_harmonic_mean("BL") + 0.01
