"""Fig 9 benchmark: CNN1 + Stitch memory-pressure sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig09_cnn1_stitch import format_fig09, run_fig09


def test_fig09_cnn1_stitch(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig09(duration=30.0))
    print()
    print(format_fig09(result))
    # Fig 9a: BL collapses with load; CT recovers much of it; the subdomain
    # configurations essentially hold standalone performance.
    assert result.ml_perf["BL"][-1] < 0.45
    assert result.ml_average("CT") > result.ml_average("BL") + 0.1
    assert result.ml_average("KP-SD") >= result.ml_average("KP") - 0.02
    assert result.ml_average("KP") > result.ml_average("CT")
    # Fig 9b: Subdomain pays the largest CPU-throughput cost; Kelp's
    # backfilling recovers most of it (paper: ~ -25% vs -9%).
    assert result.cpu_harmonic_mean("KP-SD") < result.cpu_harmonic_mean("KP")
    assert (
        result.cpu_harmonic_mean("KP")
        > 1.1 * result.cpu_harmonic_mean("KP-SD")
    )
    # Stitch throughput still scales with instances under BL (Fig 9b shape).
    assert result.cpu_throughput["BL"][2] > 1.5 * result.cpu_throughput["BL"][0]
