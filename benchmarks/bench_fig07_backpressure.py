"""Fig 7 benchmark: shared backpressure and prefetcher toggling."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig07_backpressure import format_fig07, run_fig07


def test_fig07_rnn1(benchmark) -> None:
    result = run_once(
        benchmark, lambda: run_fig07("rnn1", duration=30.0, fractions=(0.0, 0.5, 1.0))
    )
    print()
    print(format_fig07(result))
    worst = result.point("H", 0.0)
    # Paper: -14% QPS, +16% tail with no prefetchers disabled at H.
    assert 0.75 <= worst.ml_perf_norm <= 0.95
    assert worst.tail_norm is not None and worst.tail_norm > 1.05
    assert result.point("H", 1.0).ml_perf_norm > worst.ml_perf_norm


def test_fig07_cnn1(benchmark) -> None:
    result = run_once(
        benchmark, lambda: run_fig07("cnn1", duration=30.0, fractions=(0.0, 0.5, 1.0))
    )
    print()
    print(format_fig07(result))
    worst = result.point("H", 0.0)
    # Paper: CNN1 suffers ~50% with subdomains alone.
    assert 0.40 <= worst.ml_perf_norm <= 0.60
    # Disabling prefetchers restores performance and drains saturation.
    assert result.point("H", 1.0).ml_perf_norm > 0.85
    assert result.point("H", 1.0).saturation < worst.saturation


def test_fig07_cnn2(benchmark) -> None:
    result = run_once(
        benchmark, lambda: run_fig07("cnn2", duration=30.0, fractions=(0.0, 0.5, 1.0))
    )
    print()
    print(format_fig07(result))
    worst = result.point("H", 0.0)
    # Paper: CNN2 only ~10%.
    assert 0.80 <= worst.ml_perf_norm <= 0.95
    # Low pressure can slightly exceed standalone (SNC latency benefit).
    assert result.point("L", 1.0).ml_perf_norm >= 0.99
