"""Ablation benchmark: dynamic churn (aggressor burst mid-run)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_churn import (
    format_ablation_churn,
    run_ablation_churn,
)


def test_ablation_churn_kelp(benchmark) -> None:
    result = run_once(benchmark, lambda: run_ablation_churn("KP"))
    print()
    print(format_ablation_churn(result))
    bl = run_ablation_churn("BL")
    print(format_ablation_churn(bl))
    # Kelp rides through the burst far better than Baseline...
    assert result.phase("burst").ml_perf_norm > bl.phase("burst").ml_perf_norm + 0.3
    # ...throttles only while the burst lasts...
    assert result.phase("burst").lo_prefetchers_at_end < 8
    assert result.phase("recovered").lo_prefetchers_at_end == 8
    # ...and fully recovers afterwards.
    assert result.phase("recovered").ml_perf_norm > 0.97
    assert result.phase("quiet").ml_perf_norm > 0.97
