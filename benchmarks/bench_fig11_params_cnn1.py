"""Fig 11 benchmark: runtime parameters for CNN1 + Stitch."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig11_params_cnn1 import format_fig11, run_fig11


def test_fig11_params_cnn1(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig11(duration=30.0))
    print()
    print(format_fig11(result))
    # Throttling deepens with load for every mechanism.
    assert result.ct_cores[-1] <= result.ct_cores[0]
    assert result.kpsd_prefetchers[-1] < result.kpsd_prefetchers[0]
    # Kelp leaves the CPU tasks more cores than CoreThrottle at high load
    # (normalized to each mechanism's own maximum).
    assert result.kp_cores[-1] >= result.ct_cores[-1] - 0.05
