"""Fig 12 benchmark: runtime parameters for RNN1 + CPUML."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig12_params_rnn1 import format_fig12, run_fig12


def test_fig12_params_rnn1(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig12(duration=30.0))
    print()
    print(format_fig12(result))
    # The gentler mix throttles less: at low thread counts Subdomain keeps
    # every prefetcher on (the paper's Fig 12b observation).
    assert result.kpsd_prefetchers[0] == 1.0
    # Throttling still deepens with load.
    assert result.kpsd_prefetchers[-1] <= result.kpsd_prefetchers[0]
    assert result.ct_cores[-1] <= result.ct_cores[0]
