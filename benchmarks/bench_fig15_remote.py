"""Fig 15 benchmark: remote memory-interference sensitivity."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig15_remote import format_fig15, run_fig15


def test_fig15_remote(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig15(duration=30.0))
    print()
    print(format_fig15(result))
    # Remote DRAM always costs at least as much as local DRAM.
    for ml in ("rnn1", "cnn1", "cnn2", "cnn3"):
        assert result.remote_dram[ml] <= result.dram[ml] + 1e-9
    # Paper: the Cloud TPU platform (CNN1/CNN2) pays a much larger extra
    # penalty (~16% / ~27%) than the TPU and GPU platforms.
    assert result.remote_extra_loss("cnn1") > 0.08
    assert result.remote_extra_loss("cnn2") > 0.10
    assert result.remote_extra_loss("cnn2") > result.remote_extra_loss("rnn1")
    assert result.remote_extra_loss("cnn1") > result.remote_extra_loss("cnn3")
