"""Fig 2 benchmark: fleet 99 %-ile memory-bandwidth CDF."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig02_fleet_bw import format_fig02, run_fig02


def test_fig02_fleet_bw(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig02(machines=1000))
    print()
    print(format_fig02(result))
    # Paper: 16% of machines above 70% of peak; the CDF is smooth and full.
    assert 0.10 <= result.fraction_above_70pct <= 0.25
    assert result.fraction_of_machines[-1] == 1.0
    assert all(
        a <= b
        for a, b in zip(result.fraction_of_machines, result.fraction_of_machines[1:])
    )
