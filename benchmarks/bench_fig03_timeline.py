"""Fig 3 benchmark: RNN1 execution timeline under a DRAM aggressor."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.fig03_timeline import format_fig03, run_fig03


def test_fig03_timeline(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig03(requests=40))
    print()
    print(format_fig03(result))
    # Paper: CPU-intensive phases stretch by up to ~51%; accelerator and
    # communication phases are insensitive.
    assert 1.3 <= result.cpu_stretch <= 1.9
    assert abs(result.tpu_stretch - 1.0) < 0.02
    assert result.colocation.communication == pytest.approx(
        result.standalone.communication
    )
