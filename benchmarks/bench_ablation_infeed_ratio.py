"""Ablation benchmark: the omitted host/accel interaction-ratio sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_infeed_ratio import (
    format_ablation_infeed_ratio,
    run_ablation_infeed_ratio,
)


def test_ablation_infeed_ratio_cnn1(benchmark) -> None:
    result = run_once(
        benchmark, lambda: run_ablation_infeed_ratio("cnn1", duration=25.0)
    )
    print()
    print(format_ablation_infeed_ratio(result))
    # Paper's claim: sensitivity persists across the interaction spectrum —
    # every ratio with meaningful host work shows substantial degradation.
    assert all(s < 0.85 for s in result.sensitivity)
    # Once the host phase dominates the step, sensitivity saturates.
    assert abs(result.sensitivity[-1] - result.sensitivity[-2]) < 0.1
