"""Ablation benchmark: the omitted RNN1 throughput-latency knee sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_knee import format_ablation_knee, run_ablation_knee


def test_ablation_knee(benchmark) -> None:
    result = run_once(benchmark, lambda: run_ablation_knee(duration=25.0))
    print()
    print(format_ablation_knee(result))
    # Throughput tracks offered load while tail latency is convex in load —
    # the knee the paper targets sits in the upper band.
    assert result.qps == sorted(result.qps)
    assert result.p95_latency_ms == sorted(result.p95_latency_ms)
    growth_low = result.p95_latency_ms[1] / result.p95_latency_ms[0]
    growth_high = result.p95_latency_ms[-1] / result.p95_latency_ms[-2]
    assert growth_high > growth_low
    assert 0.6 <= result.knee_fraction() <= 0.95
