"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures, prints the
paper-style rows (run pytest with ``-s`` to see them), and asserts the
qualitative shape targets documented in DESIGN.md. Simulated horizons are
shortened relative to the paper's wall-clock experiments; the controller
converges within a few control intervals either way.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
