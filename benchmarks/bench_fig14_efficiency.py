"""Fig 14 benchmark: runtime efficiency (ML gain per CPU loss)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig14_efficiency import format_fig14, run_fig14


def test_fig14_efficiency(benchmark) -> None:
    result = run_once(benchmark, lambda: run_fig14(duration=30.0))
    print()
    print(format_fig14(result))
    kp = result.average("KP")
    ct = result.average("CT")
    sd = result.average("KP-SD")
    # Paper: Subdomain is least efficient (coarse fragmentation); Kelp is
    # ~17% above CoreThrottle and ~37% above Subdomain on average.
    assert sd == min(sd, ct, kp)
    assert kp > sd
    assert kp > 0.9 * ct
