#!/usr/bin/env python
"""Calibration dashboard: prints the paper's anchor numbers vs the model.

Run after any parameter change:  python scripts/calibrate.py [section...]
Sections: fig5 fig7 fig9 fig10 fig13
"""

from __future__ import annotations

import sys
import time

from repro.experiments.common import MixConfig, run_colocation, standalone_performance
from repro.metrics.slowdown import arithmetic_mean, harmonic_mean


def fig5() -> None:
    print("== Fig5 BL sensitivity (targets: dram avg .60, llc avg .86, CNN1 worst) ==")
    from repro.experiments.fig05_sensitivity import run_fig05

    result = run_fig05()
    for ml in ["rnn1", "cnn1", "cnn2", "cnn3"]:
        print(f"  {ml}: dram={result.dram[ml]:.2f} llc={result.llc[ml]:.2f}")
    print(f"  avg: dram={result.dram_average:.2f} llc={result.llc_average:.2f}")


def fig7() -> None:
    print("== Fig7 KP-SD w/o pf mgmt proxy: KP-SD policy manages pf; compare BL-in-SNC ==")
    print("   (targets at H: rnn1 -14%/tail+16%, cnn1 -50%, cnn2 -10%)")
    # The no-management case is exercised directly via the machine model in
    # the fig07 driver; here we sanity check the managed KP-SD endpoint.
    for ml in ["rnn1", "cnn1", "cnn2"]:
        for lv in ["L", "M", "H"]:
            r = run_colocation(MixConfig(ml=ml, policy="KP-SD", cpu="dram", intensity=lv))
            tail = f" tail={r.ml_tail_norm:.2f}x" if r.ml_tail_norm else ""
            print(f"  KP-SD {ml} {lv}: ml={r.ml_perf_norm:.2f}{tail}")


def fig9() -> None:
    print("== Fig9 CNN1+Stitch sweep (targets: BL->0.4@6; CT avg ~.75; KP-SD ~.87/-25%cpu; KP ~.83/-9%cpu) ==")
    ref_cpu = None
    for pol in ["BL", "CT", "KP-SD", "KP"]:
        mls, cpus = [], []
        for n in [1, 2, 3, 4, 5, 6]:
            r = run_colocation(MixConfig(ml="cnn1", policy=pol, cpu="stitch", intensity=n))
            mls.append(r.ml_perf_norm)
            cpus.append(r.cpu_throughput)
        if pol == "BL":
            ref_cpu = cpus[0]
        ml_avg = arithmetic_mean(mls)
        cpu_norm = [c / ref_cpu for c in cpus]
        print(f"  {pol}: ml={['%.2f'%v for v in mls]} avg={ml_avg:.2f}  "
              f"cpu={['%.2f'%v for v in cpu_norm]} hmean={harmonic_mean(cpu_norm):.2f}")


def fig10() -> None:
    print("== Fig10 RNN1+CPUML sweep (targets: CT -9%qps/+13%tail/-5%cpu; KP-SD ~0%/-33%cpu; KP -5%/+8%/-13%) ==")
    ref_cpu = None
    for pol in ["BL", "CT", "KP-SD", "KP"]:
        qps, tails, cpus = [], [], []
        for n in [2, 4, 6, 8, 10, 12, 14, 16]:
            r = run_colocation(MixConfig(ml="rnn1", policy=pol, cpu="cpuml", intensity=n))
            qps.append(r.ml_perf_norm)
            tails.append(r.ml_tail_norm)
            cpus.append(r.cpu_throughput)
        if pol == "BL":
            ref_cpu = cpus[0]
        cpu_norm = [c / ref_cpu for c in cpus]
        print(f"  {pol}: qps_avg={arithmetic_mean(qps):.2f} tail_avg={arithmetic_mean(tails):.2f} "
              f"cpu_hmean={harmonic_mean(cpu_norm):.2f}")
        print(f"      qps={['%.2f'%v for v in qps]}")


def fig13() -> None:
    print("== Fig13 overall (targets: KP vs BL -43% ml slowdown @ -24% cpu; KP=CT cpu, -7% slowdown; KP vs KP-SD +4% ml slowdown +19% cpu) ==")
    mixes = [(ml, cpu, i) for ml in ["rnn1", "cnn1", "cnn2", "cnn3"]
             for cpu, i in [("stream", 8), ("stitch", 4), ("cpuml", 12)]]
    summary = {}
    for pol in ["BL", "CT", "KP-SD", "KP"]:
        sl, cp = [], []
        for ml, cpu, i in mixes:
            r = run_colocation(MixConfig(ml=ml, policy=pol, cpu=cpu, intensity=i))
            bl = run_colocation(MixConfig(ml=ml, policy="BL", cpu=cpu, intensity=i))
            sl.append(1.0 / max(r.ml_perf_norm, 1e-6))
            cp.append(r.cpu_throughput / max(bl.cpu_throughput, 1e-9))
        summary[pol] = (arithmetic_mean(sl), harmonic_mean(cp))
        print(f"  {pol}: ml_slowdown={summary[pol][0]:.2f} cpu_hmean={summary[pol][1]:.2f}")


if __name__ == "__main__":
    wanted = sys.argv[1:] or ["fig5", "fig9", "fig10"]
    t0 = time.time()
    for section in wanted:
        globals()[section]()
    print(f"[{time.time()-t0:.0f}s]")
