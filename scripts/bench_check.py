#!/usr/bin/env python
"""Perf regression gate: fresh bench JSON vs the committed baseline.

Compares the serial cache-on suite timings of a fresh ``bench_smoke.py``
report against the committed baseline (``BENCH_PR6.json``), per experiment
and in total, with a generous tolerance — CI runners are noisy, so the gate
only catches real regressions (default: 40% over baseline fails).

Usage::

    python scripts/bench_smoke.py --out /tmp/bench-ci.json
    python scripts/bench_check.py --baseline BENCH_PR6.json \
        --current /tmp/bench-ci.json

Exit status 0 when every comparison is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_serial(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    try:
        return report["suite"]["serial_cache_on"]
    except KeyError:
        raise SystemExit(f"{path}: not a bench_smoke report (no suite section)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_PR6.json",
        help="committed reference report (default: BENCH_PR6.json)",
    )
    parser.add_argument(
        "--current", required=True, help="freshly generated report to check"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed fractional slowdown over baseline (default: 0.40)",
    )
    args = parser.parse_args(argv)

    baseline = load_serial(args.baseline)
    current = load_serial(args.current)
    tolerance = args.tolerance

    failures: list[str] = []
    rows: list[tuple[str, float, float, float]] = []

    def check(name: str, base_s: float, cur_s: float) -> None:
        limit = base_s * (1.0 + tolerance)
        rows.append((name, base_s, cur_s, limit))
        if cur_s > limit:
            failures.append(
                f"{name}: {cur_s:.3f}s exceeds {base_s:.3f}s "
                f"+{tolerance:.0%} (limit {limit:.3f}s)"
            )

    check("suite total", baseline["wall_s"], current["wall_s"])
    base_per = baseline.get("per_experiment_s", {})
    cur_per = current.get("per_experiment_s", {})
    for exp_id, base_s in sorted(base_per.items()):
        if exp_id not in cur_per:
            failures.append(f"{exp_id}: missing from current report")
            continue
        check(exp_id, base_s, cur_per[exp_id])
    for exp_id in sorted(set(cur_per) - set(base_per)):
        print(f"note: {exp_id} has no baseline entry; skipped")

    width = max(len(name) for name, *_ in rows)
    print(f"{'experiment':<{width}}  baseline  current   limit")
    for name, base_s, cur_s, limit in rows:
        flag = "  <-- REGRESSION" if cur_s > limit else ""
        print(
            f"{name:<{width}}  {base_s:7.3f}s  {cur_s:7.3f}s  {limit:7.3f}s"
            f"{flag}"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond +{tolerance:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: all timings within +{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
