#!/usr/bin/env python
"""Perf regression gate: fresh bench JSON vs the committed baseline.

Compares the serial cache-on suite timings of a fresh ``bench_smoke.py``
report against the committed baseline (``BENCH_PR10.json``), per experiment
and in total, plus the trace-scale replay wall when both reports carry the
probe at the same request count, the fleet-replay scaling sweep (per-size
wall and events/s throughput), the incident-loop probe wall, and the
serving-control-plane probe (stepping wall, epochs/s throughput, and
checkpoint save/restore walls — plus a hard failure if the restored run
stopped being bit-identical), with a generous tolerance — CI runners are
noisy, so the gate only catches real regressions (default: 40% over
baseline fails).

Usage::

    python scripts/bench_smoke.py --out /tmp/bench-ci.json
    python scripts/bench_check.py --baseline BENCH_PR10.json \
        --current /tmp/bench-ci.json

Exit status 0 when every comparison is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if "suite" not in report or "serial_cache_on" not in report["suite"]:
        raise SystemExit(f"{path}: not a bench_smoke report (no suite section)")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default="BENCH_PR10.json",
        help="committed reference report (default: BENCH_PR10.json)",
    )
    parser.add_argument(
        "--current", required=True, help="freshly generated report to check"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed fractional slowdown over baseline (default: 0.40)",
    )
    args = parser.parse_args(argv)

    baseline_report = load_report(args.baseline)
    current_report = load_report(args.current)
    baseline = baseline_report["suite"]["serial_cache_on"]
    current = current_report["suite"]["serial_cache_on"]
    tolerance = args.tolerance

    failures: list[str] = []
    rows: list[tuple[str, float, float, float, bool]] = []

    def check(
        name: str, base_s: float, cur_s: float, slack_s: float = 0.0
    ) -> None:
        # slack_s is an absolute grace on top of the fractional tolerance,
        # for millisecond-scale walls where 40% of the baseline is smaller
        # than ordinary scheduler noise.
        limit = base_s * (1.0 + tolerance) + slack_s
        bad = cur_s > limit
        rows.append((name, base_s, cur_s, limit, bad))
        if bad:
            failures.append(
                f"{name}: {cur_s:.3f}s exceeds {base_s:.3f}s "
                f"+{tolerance:.0%} (limit {limit:.3f}s)"
            )

    check("suite total", baseline["wall_s"], current["wall_s"])
    base_per = baseline.get("per_experiment_s", {})
    cur_per = current.get("per_experiment_s", {})
    for exp_id, base_s in sorted(base_per.items()):
        if exp_id not in cur_per:
            failures.append(f"{exp_id}: missing from current report")
            continue
        check(exp_id, base_s, cur_per[exp_id])
    for exp_id in sorted(set(cur_per) - set(base_per)):
        print(f"note: {exp_id} has no baseline entry; skipped")

    # The trace-scale replay wall is gated only when both reports ran the
    # probe at the same request count — a CI run with a reduced
    # --trace-requests is not comparable to the committed full-scale
    # baseline and is skipped with a note rather than failed.
    base_trace = baseline_report.get("trace")
    cur_trace = current_report.get("trace")
    if base_trace and cur_trace:
        if base_trace["requests_target"] == cur_trace["requests_target"]:
            check(
                "trace replay",
                base_trace["replay_wall_s"],
                cur_trace["replay_wall_s"],
            )
        else:
            print(
                "note: trace probe request counts differ "
                f"({base_trace['requests_target']} vs "
                f"{cur_trace['requests_target']}); skipped"
            )
    elif base_trace:
        print("note: current report has no trace probe; skipped")

    # The fleet-replay scaling sweep gates both directions: wall-clock per
    # fleet size (lower is better) and dispatch throughput (higher is
    # better) — a change that keeps the wall flat by dispatching fewer
    # events would otherwise slip through. Sizes are matched by node
    # count; a reduced sweep (e.g. a quick local run) only gates the
    # sizes it ran.
    base_replay = baseline_report.get("fleet_replay")
    cur_replay = current_report.get("fleet_replay")
    if base_replay and cur_replay:
        cur_by_nodes = {p["nodes"]: p for p in cur_replay["sweep"]}
        for base_point in base_replay["sweep"]:
            nodes = base_point["nodes"]
            cur_point = cur_by_nodes.get(nodes)
            if cur_point is None:
                print(
                    f"note: fleet-replay {nodes}-node point missing from "
                    "current report; skipped"
                )
                continue
            check(
                f"fleet-replay {nodes}n wall",
                base_point["wall_s"],
                cur_point["wall_s"],
            )
            base_eps = base_point["events_per_s"]
            cur_eps = cur_point["events_per_s"]
            floor = base_eps * (1.0 - tolerance)
            bad = cur_eps < floor
            rows.append(
                (f"fleet-replay {nodes}n ev/s", base_eps, cur_eps, floor, bad)
            )
            if bad:
                failures.append(
                    f"fleet-replay {nodes}n ev/s: {cur_eps:,.0f} below "
                    f"{base_eps:,.0f} -{tolerance:.0%} "
                    f"(floor {floor:,.0f})"
                )
    elif base_replay:
        print("note: current report has no fleet-replay probe; skipped")

    base_incidents = baseline_report.get("incidents")
    cur_incidents = current_report.get("incidents")
    if base_incidents and cur_incidents:
        check(
            "incident loop",
            base_incidents["wall_s"],
            cur_incidents["wall_s"],
        )
    elif base_incidents:
        print("note: current report has no incidents probe; skipped")

    # The serving probe gates the epoch-stepping wall, the stepping
    # throughput (a floor, like events/s), and the checkpoint round-trip
    # walls. restore_identical is correctness, not performance: a current
    # report that lost bit-identity fails outright, tolerance or not.
    base_serve = baseline_report.get("serve")
    cur_serve = current_report.get("serve")
    if base_serve and cur_serve:
        check("serve stepping", base_serve["wall_s"], cur_serve["wall_s"])
        base_eps = base_serve["epochs_per_s"]
        cur_eps = cur_serve["epochs_per_s"]
        floor = base_eps * (1.0 - tolerance)
        bad = cur_eps < floor
        rows.append(("serve epochs ev/s", base_eps, cur_eps, floor, bad))
        if bad:
            failures.append(
                f"serve epochs/s: {cur_eps:,.0f} below {base_eps:,.0f} "
                f"-{tolerance:.0%} (floor {floor:,.0f})"
            )
        check(
            "serve checkpoint save",
            base_serve["save_wall_s"],
            cur_serve["save_wall_s"],
            slack_s=0.05,
        )
        check(
            "serve checkpoint restore",
            base_serve["restore_wall_s"],
            cur_serve["restore_wall_s"],
            slack_s=0.05,
        )
        if not cur_serve["restore_identical"]:
            failures.append(
                "serve restore_identical: restored run diverged from the "
                "uninterrupted run"
            )
    elif base_serve:
        print("note: current report has no serve probe; skipped")

    width = max(len(name) for name, *_ in rows)
    print(f"{'experiment':<{width}}  baseline  current   limit")
    for name, base_s, cur_s, limit, bad in rows:
        flag = "  <-- REGRESSION" if bad else ""
        if name.endswith("ev/s"):
            # Throughput row: the limit column is a floor, not a ceiling.
            print(
                f"{name:<{width}}  {base_s:8,.0f}  {cur_s:8,.0f}  "
                f"{limit:8,.0f}{flag}"
            )
            continue
        print(
            f"{name:<{width}}  {base_s:7.3f}s  {cur_s:7.3f}s  {limit:7.3f}s"
            f"{flag}"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond +{tolerance:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: all timings within +{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
