#!/usr/bin/env python
"""Perf smoke benchmark: fixed experiment subset -> BENCH_PR<n>.json.

Runs a fixed, representative slice of the experiment registry four ways —
serial/parallel x cache-on/cache-off — plus one instrumented colocation mix,
one small fleet-sim run, one trace-scale probe (synthesize a 1M-request
24h trace, replay it over a 4-node fleet), one incident-loop probe
(inject / detect / remediate / score over an hour of traffic), and one
serving-control-plane probe (epoch-stepped FleetService with a
checkpoint/restore round trip), and writes a JSON trajectory
(wall-clock per experiment, solver cache hit-rate, events dispatched) that
later PRs can compare against.

Usage::

    python scripts/bench_smoke.py                  # writes BENCH_PR1.json
    python scripts/bench_smoke.py --jobs 8 --out BENCH_PR2.json
    make bench
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments import common as common_mod  # noqa: E402
from repro.experiments.common import MixConfig, run_colocation  # noqa: E402
from repro.experiments.suite import run_suite  # noqa: E402
from repro.hw.contention import (  # noqa: E402
    KnobVariant,
    clear_shared_cache,
    global_stats,
    reset_global_stats,
    set_cache_default,
)
from repro.parallel import maybe_profiled  # noqa: E402

#: The fixed benchmark subset: cheap motivation figure, two sweeps, one
#: policy matrix, and the workload table — a representative mix of solver-
#: and event-bound work. Keep this list stable across PRs.
SUBSET = ["fig02", "fig05", "fig09", "fig13", "table1"]
#: Simulated horizon for the subset, seconds.
DURATION = 16.0
#: The instrumented single-mix probe.
MIX = MixConfig(
    ml="cnn1", policy="KP", cpu="stream", intensity=1, duration=20.0, warmup=4.0
)
#: The fleet-scale probe: many nodes in one event loop is a different
#: performance profile (event-bound, many servers) than the mix probe.
FLEET = dict(
    nodes=8,
    policy="KP",
    routing="interference-aware",
    batch_jobs=4,
    batch_intensity=8,
    duration=6.0,
    warmup=2.0,
    seed=0,
)


def _fresh_state() -> None:
    """Reset cross-run memo state so every pass is measured cold.

    Also collect and freeze the heap: without this, objects surviving from
    *earlier* passes sit in the young generations and every pass after the
    first pays extra GC time scanning them — the passes would not be
    independent measurements (pyperf does the same).
    """
    common_mod._STANDALONE_CACHE.clear()
    clear_shared_cache()
    reset_global_stats()
    gc.collect()
    gc.freeze()


def _timed_suite(jobs: int | None, cache: bool) -> dict:
    set_cache_default(cache)
    _fresh_state()
    started = time.perf_counter()
    entries = run_suite(experiments=SUBSET, duration=DURATION, jobs=jobs)
    wall = time.perf_counter() - started
    record: dict = {
        "wall_s": round(wall, 3),
        "cache": cache,
        "jobs": jobs or 1,
        "per_experiment_s": {e.exp_id: round(e.seconds, 3) for e in entries},
    }
    if (jobs or 1) == 1:
        # Parallel workers keep their own counters; only serial runs can
        # report process-wide solver statistics meaningfully.
        record["solver"] = global_stats().as_dict()
    return record


def _timed_mix(cache: bool) -> dict:
    set_cache_default(cache)
    _fresh_state()
    started = time.perf_counter()
    result = run_colocation(MIX)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 3),
        "cache": cache,
        "events_dispatched": result.events_dispatched,
        "solver_stats": result.solver_stats,
        "ml_perf_norm": result.ml_perf_norm,
    }


def _timed_fleet(cache: bool) -> dict:
    from repro.experiments.fleet_sim import run_fleet_sim

    set_cache_default(cache)
    _fresh_state()
    started = time.perf_counter()
    result = run_fleet_sim(**FLEET)
    wall = time.perf_counter() - started
    run = result.results[0]
    return {
        "wall_s": round(wall, 3),
        "cache": cache,
        "events_dispatched": run.events_dispatched,
        "efficiency": round(result.efficiency, 6),
        "fraction_saturated": round(result.fraction_saturated, 6),
        "serving_p99_ms": {
            row.name: None if row.p99_ms is None else round(row.p99_ms, 3)
            for row in result.tenant_rows
        },
    }


def _timed_trace(requests_target: int) -> dict:
    """The trace-scale probe: synthesize a day of traffic, replay it.

    Times the halves separately — generation is vectorized numpy and
    should stay sub-second even at 1M requests, while replay is the
    event-loop-bound half whose wall scales with the request count. The
    replay trial runs through :class:`FleetOrchestrator` directly (the
    exact config ``run_fleet_trace`` would build for trial 0) so the
    probe can also report the orchestrator's own phase walls — the
    replay loop vs the finalize/accounting pass.
    """
    from dataclasses import replace

    from repro.fleet.orchestrator import (
        FleetOrchestrator,
        fleet_config_for_trace,
    )
    from repro.parallel import point_seed
    from repro.traces import DAY_S, TraceGenConfig, generate_trace

    set_cache_default(True)
    _fresh_state()
    gen = TraceGenConfig(
        seed=0, duration_s=DAY_S, rate_qps=requests_target / DAY_S
    )
    started = time.perf_counter()
    trace = generate_trace(gen)
    generate_wall = time.perf_counter() - started
    base = fleet_config_for_trace(trace, nodes=4, seed=0)
    config = replace(base, seed=point_seed(0, 0))
    orchestrator = FleetOrchestrator(config, trace=trace)
    started = time.perf_counter()
    with maybe_profiled("fleet-trace-probe"):
        run = orchestrator.run()
    replay_wall = time.perf_counter() - started
    return {
        "requests_target": requests_target,
        "requests": len(trace),
        "nodes": config.nodes,
        "policy": config.policy,
        "routing": config.routing,
        "generate_wall_s": round(generate_wall, 3),
        "replay_wall_s": round(replay_wall, 3),
        "phases": {
            "generate_s": round(generate_wall, 3),
            "replay_s": round(
                orchestrator.phase_walls.get("replay_s", 0.0), 3
            ),
            "accounting_s": round(
                orchestrator.phase_walls.get("accounting_s", 0.0), 3
            ),
        },
        "events_dispatched": run.events_dispatched,
        "events_per_s": round(
            run.events_dispatched / max(replay_wall, 1e-9)
        ),
        "serving_yield": round(run.serving_yield, 6),
        "efficiency": round(run.efficiency, 6),
    }


#: Node counts for the fleet-replay scaling probe.
FLEET_REPLAY_NODES = (16, 64, 256)
#: Offered load for the scaling probe, requests/s over the full day. Low
#: on purpose: the probe isolates the per-tick fleet costs (sampling,
#: routing-index maintenance, batch-queue scans) that scale with node
#: count, rather than re-measuring the arrival-bound path _timed_trace
#: already covers.
FLEET_REPLAY_RATE_QPS = 2.0


def _timed_fleet_replay(node_counts=FLEET_REPLAY_NODES) -> dict:
    """The fleet-scaling probe: one day trace over 16/64/256 nodes.

    Every sweep point replays the *same* generated day-long trace, so the
    walls are directly comparable across fleet sizes: the arrival stream
    is constant and only the per-tick fleet work grows. Telemetry
    collection is off — the probe times the replay hot path, not the
    row-freezing of millions of telemetry samples.
    """
    from dataclasses import replace

    from repro.fleet.orchestrator import (
        FleetOrchestrator,
        fleet_config_for_trace,
    )
    from repro.parallel import point_seed
    from repro.traces import DAY_S, TraceGenConfig, generate_trace

    set_cache_default(True)
    _fresh_state()
    gen = TraceGenConfig(
        seed=0, duration_s=DAY_S, rate_qps=FLEET_REPLAY_RATE_QPS
    )
    started = time.perf_counter()
    trace = generate_trace(gen)
    generate_wall = time.perf_counter() - started
    sweep = []
    for nodes in node_counts:
        base = fleet_config_for_trace(trace, nodes=nodes, seed=0)
        config = replace(base, seed=point_seed(0, 0))
        orchestrator = FleetOrchestrator(
            config, collect_telemetry=False, trace=trace
        )
        started = time.perf_counter()
        with maybe_profiled(f"fleet-replay-{nodes}n"):
            run = orchestrator.run()
        wall = time.perf_counter() - started
        sweep.append(
            {
                "nodes": nodes,
                "routing": config.routing,
                "wall_s": round(wall, 3),
                "phases": {
                    "replay_s": round(
                        orchestrator.phase_walls.get("replay_s", 0.0), 3
                    ),
                    "accounting_s": round(
                        orchestrator.phase_walls.get("accounting_s", 0.0), 3
                    ),
                },
                "events_dispatched": run.events_dispatched,
                "events_per_s": round(
                    run.events_dispatched / max(wall, 1e-9)
                ),
                "serving_yield": round(run.serving_yield, 6),
            }
        )
    return {
        "requests": len(trace),
        "rate_qps": FLEET_REPLAY_RATE_QPS,
        "trace_duration_s": DAY_S,
        "generate_wall_s": round(generate_wall, 3),
        "sweep": sweep,
    }


def _timed_incidents() -> dict:
    """The incident-loop probe: inject, detect, remediate, score.

    One hour of generated traffic, all five incident classes, three runs
    of the same trace (clean / no-remediation / remediation) — the
    fleet-incidents family's full counterfactual pipeline. The wall
    covers all three runs plus detection, localization, playbook
    execution and scoring; the scorecard numbers double as a sanity
    check that the committed probe still detects and remediates.
    """
    from repro.experiments.fleet_incidents import run_fleet_incidents
    from repro.traces import TraceGenConfig

    set_cache_default(True)
    _fresh_state()
    gen = TraceGenConfig(
        seed=3, duration_s=3600.0, rate_qps=1.0, burst_multiplier=1.0
    )
    started = time.perf_counter()
    result = run_fleet_incidents(
        gen=gen,
        nodes=3,
        routing="random",
        interval=10.0,
        warmup=20.0,
        seed=7,
        incident_seed=5,
    )
    wall = time.perf_counter() - started
    card = result.scorecards[0]
    return {
        "wall_s": round(wall, 3),
        "requests": result.requests,
        "incidents": len(result.schedule),
        "detected": sum(
            1 for s in card.incidents if s.detection_latency_s is not None
        ),
        "localized": sum(1 for s in card.incidents if s.localization_correct),
        "damage_norem": card.total_damage_norem,
        "damage_rem": card.total_damage_rem,
        "damage_avoided": card.total_damage_norem - card.total_damage_rem,
    }


def _timed_serve() -> dict:
    """The serving-control-plane probe: step, checkpoint, restore, verify.

    Ten simulated minutes of trace-driven traffic stepped epoch by epoch
    through :class:`FleetService`, checkpointed at the halfway epoch,
    restored into a second service, and both run to the end. Reports the
    stepping throughput (epochs/s), the checkpoint file size, the
    save/restore walls, and whether the restored run finished
    bit-identical to the uninterrupted one — the identity check doubles
    as a committed regression probe for the checkpoint format.
    """
    import tempfile

    from repro.fleet.orchestrator import fleet_config_for_trace
    from repro.serve import FleetService
    from repro.traces import TraceGenConfig, generate_trace

    set_cache_default(True)
    _fresh_state()
    gen = TraceGenConfig(seed=11, duration_s=600.0, rate_qps=20.0)
    trace = generate_trace(gen)
    config = fleet_config_for_trace(trace, nodes=4, seed=5)
    service = FleetService(
        config, trace=trace, collect_telemetry=False, epoch_s=1.0
    )
    half = 300
    started = time.perf_counter()
    service.start()
    while service.epoch < half:
        service.step()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "serve-probe.ckpt")
        save_started = time.perf_counter()
        service.save(path)
        save_wall = time.perf_counter() - save_started
        checkpoint_bytes = os.path.getsize(path)
        restore_started = time.perf_counter()
        restored = FleetService.restore(path, trace=trace)
        restore_wall = time.perf_counter() - restore_started
    service.run_to_end()
    result = service.finish()
    wall = time.perf_counter() - started
    restored.run_to_end()
    restored_result = restored.finish()
    epochs = service.epoch
    return {
        "wall_s": round(wall, 3),
        "epochs": epochs,
        "epoch_s": 1.0,
        "requests": len(trace),
        "nodes": config.nodes,
        "epochs_per_s": round(epochs / max(wall, 1e-9)),
        "checkpoint_bytes": checkpoint_bytes,
        "save_wall_s": round(save_wall, 4),
        "restore_wall_s": round(restore_wall, 4),
        "restore_identical": repr(result) == repr(restored_result),
    }


def _timed_batch_probe(variants: int = 64) -> dict:
    """Vectorized what-if vs the scalar reference over one live source set.

    Builds a small colocated machine, then scores ``variants`` MBA-cap
    candidates twice — once through :meth:`ContentionSolver.solve_variant`
    (the scalar semantic reference) and once through the numpy batch fixed
    point — and reports both walls plus the solver's ``batch_points``
    counter. The two paths agree bit-for-bit on solver outputs; this probe
    only times them.
    """
    from repro.hw.machine import Machine
    from repro.hw.placement import Placement
    from repro.hw.spec import MachineSpec
    from repro.sim import Simulator
    from repro.workloads.cpu.base import BatchTask
    from repro.workloads.cpu.catalog import cpu_workload

    set_cache_default(True)
    _fresh_state()
    machine = Machine(MachineSpec(), Simulator())
    BatchTask(
        "probe-a",
        machine,
        Placement(cores=frozenset(range(0, 8)), mem_weights={0: 0.7, 1: 0.3}),
        cpu_workload("stream", 8),
    ).start()
    BatchTask(
        "probe-b",
        machine,
        Placement(cores=frozenset(range(8, 16)), mem_weights={2: 1.0}),
        cpu_workload("dram", "H"),
    ).start()
    grid = [
        KnobVariant(mba_caps=((0, 0.1 + 0.9 * i / max(variants - 1, 1)),))
        for i in range(variants)
    ]
    sources = [
        source for task in machine.tasks() for source in task.traffic_sources()
    ]
    solver = machine.solver
    started = time.perf_counter()
    for variant in grid:
        solver.solve_variant(sources, variant)
    scalar_wall = time.perf_counter() - started
    started = time.perf_counter()
    machine.what_if(grid)
    batch_wall = time.perf_counter() - started
    stats = solver.stats.as_dict()
    return {
        "variants": variants,
        "scalar_wall_s": round(scalar_wall, 4),
        "batch_wall_s": round(batch_wall, 4),
        "speedup_batch": round(scalar_wall / max(batch_wall, 1e-9), 3),
        "batch_points": stats["batch_points"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers for the parallel pass (default: min(4, cpu_count))",
    )
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument(
        "--trace-requests", type=int, default=1_000_000,
        help="request count for the trace-scale probe (default: 1M; "
        "0 skips the probe)",
    )
    parser.add_argument(
        "--fleet-replay-nodes", default=None,
        help="comma-separated node counts for the fleet-replay scaling "
        "probe (default: 16,64,256; 0 skips the probe)",
    )
    args = parser.parse_args(argv)
    if args.fleet_replay_nodes is None:
        replay_nodes = FLEET_REPLAY_NODES
    else:
        replay_nodes = tuple(
            int(n) for n in args.fleet_replay_nodes.split(",") if int(n) > 0
        )
    cpu_count = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else min(4, cpu_count)

    suite_serial_on = _timed_suite(jobs=None, cache=True)
    suite_serial_off = _timed_suite(jobs=None, cache=False)
    # Honesty on single-core hosts: a process pool cannot speed anything up
    # there (the sweep engine falls back to serial anyway), so rather than
    # reporting a meaningless ~1.0x, skip the pass and publish null.
    run_parallel = jobs > 1 and cpu_count > 1
    suite_parallel_on = (
        _timed_suite(jobs=jobs, cache=True) if run_parallel else None
    )
    batch_probe = _timed_batch_probe()
    mix_on = _timed_mix(cache=True)
    mix_off = _timed_mix(cache=False)
    fleet_on = _timed_fleet(cache=True)
    fleet_off = _timed_fleet(cache=False)
    trace = (
        _timed_trace(args.trace_requests) if args.trace_requests > 0 else None
    )
    fleet_replay = (
        _timed_fleet_replay(replay_nodes) if replay_nodes else None
    )
    incidents = _timed_incidents()
    serve = _timed_serve()
    set_cache_default(None)

    report = {
        "meta": {
            "bench": "smoke",
            "generated": datetime.now(timezone.utc).isoformat(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": cpu_count,
            "jobs_requested": jobs,
            "parallel_skipped_reason": (
                None if run_parallel else "single-cpu host or jobs<=1"
            ),
            "subset": SUBSET,
            "duration_s": DURATION,
        },
        "suite": {
            "serial_cache_on": suite_serial_on,
            "serial_cache_off": suite_serial_off,
            "parallel_cache_on": suite_parallel_on,
            "speedup_cache": round(
                suite_serial_off["wall_s"] / max(suite_serial_on["wall_s"], 1e-9),
                3,
            ),
            "speedup_parallel": (
                round(
                    suite_serial_on["wall_s"]
                    / max(suite_parallel_on["wall_s"], 1e-9),
                    3,
                )
                if suite_parallel_on
                else None
            ),
        },
        "solver_fast_paths": batch_probe,
        "mix": {
            "config": {
                "ml": MIX.ml, "policy": MIX.policy, "cpu": MIX.cpu,
                "duration": MIX.duration,
            },
            "cache_on": mix_on,
            "cache_off": mix_off,
            "speedup_cache": round(
                mix_off["wall_s"] / max(mix_on["wall_s"], 1e-9), 3
            ),
        },
        "fleet": {
            "config": dict(FLEET),
            "cache_on": fleet_on,
            "cache_off": fleet_off,
            "speedup_cache": round(
                fleet_off["wall_s"] / max(fleet_on["wall_s"], 1e-9), 3
            ),
        },
        "trace": trace,
        "fleet_replay": fleet_replay,
        "incidents": incidents,
        "serve": serve,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    hit_rate = mix_on["solver_stats"].get("hit_rate", 0.0)
    print(f"wrote {args.out}")
    print(
        f"suite: serial cache-on {suite_serial_on['wall_s']}s, "
        f"cache-off {suite_serial_off['wall_s']}s "
        f"(cache speedup {report['suite']['speedup_cache']}x)"
    )
    if suite_parallel_on:
        print(
            f"suite: --jobs {jobs} {suite_parallel_on['wall_s']}s "
            f"(parallel speedup {report['suite']['speedup_parallel']}x "
            f"on {cpu_count} cpu)"
        )
    else:
        print(f"suite: parallel pass skipped ({cpu_count} cpu); speedup null")
    print(
        f"batch: {batch_probe['variants']} variants scalar "
        f"{batch_probe['scalar_wall_s']}s vs batch "
        f"{batch_probe['batch_wall_s']}s "
        f"({batch_probe['speedup_batch']}x)"
    )
    print(
        f"mix:   cache-on {mix_on['wall_s']}s, cache-off {mix_off['wall_s']}s, "
        f"hit-rate {hit_rate:.2%}, events {mix_on['events_dispatched']}"
    )
    print(
        f"fleet: cache-on {fleet_on['wall_s']}s, "
        f"cache-off {fleet_off['wall_s']}s, "
        f"efficiency {fleet_on['efficiency']:.3f}, "
        f"events {fleet_on['events_dispatched']}"
    )
    if trace:
        print(
            f"trace: {trace['requests']} requests over {trace['nodes']} "
            f"nodes ({trace['routing']}) generate "
            f"{trace['generate_wall_s']}s, replay {trace['replay_wall_s']}s "
            f"({trace['events_per_s']} events/s; accounting "
            f"{trace['phases']['accounting_s']}s)"
        )
    if fleet_replay:
        for point in fleet_replay["sweep"]:
            print(
                f"fleet-replay: {point['nodes']:>3} nodes "
                f"{point['wall_s']}s ({point['events_per_s']} events/s; "
                f"replay {point['phases']['replay_s']}s, accounting "
                f"{point['phases']['accounting_s']}s)"
            )
    print(
        f"incidents: {incidents['wall_s']}s for 3 runs, "
        f"{incidents['detected']}/{incidents['incidents']} detected, "
        f"{incidents['localized']}/{incidents['incidents']} localized, "
        f"damage {incidents['damage_norem']} -> {incidents['damage_rem']}"
    )
    print(
        f"serve: {serve['epochs']} epochs in {serve['wall_s']}s "
        f"({serve['epochs_per_s']} epochs/s), checkpoint "
        f"{serve['checkpoint_bytes']} bytes, save {serve['save_wall_s']}s, "
        f"restore {serve['restore_wall_s']}s, restore identical: "
        f"{serve['restore_identical']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
