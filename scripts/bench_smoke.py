#!/usr/bin/env python
"""Perf smoke benchmark: fixed experiment subset -> BENCH_PR<n>.json.

Runs a fixed, representative slice of the experiment registry four ways —
serial/parallel x cache-on/cache-off — plus one instrumented colocation mix
and one small fleet-sim run, and writes a JSON trajectory (wall-clock per
experiment, solver cache hit-rate, events dispatched) that later PRs can
compare against.

Usage::

    python scripts/bench_smoke.py                  # writes BENCH_PR1.json
    python scripts/bench_smoke.py --jobs 8 --out BENCH_PR2.json
    make bench
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments import common as common_mod  # noqa: E402
from repro.experiments.common import MixConfig, run_colocation  # noqa: E402
from repro.experiments.suite import run_suite  # noqa: E402
from repro.hw.contention import (  # noqa: E402
    global_stats,
    reset_global_stats,
    set_cache_default,
)

#: The fixed benchmark subset: cheap motivation figure, two sweeps, one
#: policy matrix, and the workload table — a representative mix of solver-
#: and event-bound work. Keep this list stable across PRs.
SUBSET = ["fig02", "fig05", "fig09", "fig13", "table1"]
#: Simulated horizon for the subset, seconds.
DURATION = 16.0
#: The instrumented single-mix probe.
MIX = MixConfig(
    ml="cnn1", policy="KP", cpu="stream", intensity=1, duration=20.0, warmup=4.0
)
#: The fleet-scale probe: many nodes in one event loop is a different
#: performance profile (event-bound, many servers) than the mix probe.
FLEET = dict(
    nodes=8,
    policy="KP",
    routing="interference-aware",
    batch_jobs=4,
    batch_intensity=8,
    duration=6.0,
    warmup=2.0,
    seed=0,
)


def _fresh_state() -> None:
    """Reset cross-run memo state so every pass is measured cold."""
    common_mod._STANDALONE_CACHE.clear()
    reset_global_stats()


def _timed_suite(jobs: int | None, cache: bool) -> dict:
    set_cache_default(cache)
    _fresh_state()
    started = time.perf_counter()
    entries = run_suite(experiments=SUBSET, duration=DURATION, jobs=jobs)
    wall = time.perf_counter() - started
    record: dict = {
        "wall_s": round(wall, 3),
        "cache": cache,
        "jobs": jobs or 1,
        "per_experiment_s": {e.exp_id: round(e.seconds, 3) for e in entries},
    }
    if (jobs or 1) == 1:
        # Parallel workers keep their own counters; only serial runs can
        # report process-wide solver statistics meaningfully.
        record["solver"] = global_stats().as_dict()
    return record


def _timed_mix(cache: bool) -> dict:
    set_cache_default(cache)
    _fresh_state()
    started = time.perf_counter()
    result = run_colocation(MIX)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 3),
        "cache": cache,
        "events_dispatched": result.events_dispatched,
        "solver_stats": result.solver_stats,
        "ml_perf_norm": result.ml_perf_norm,
    }


def _timed_fleet(cache: bool) -> dict:
    from repro.experiments.fleet_sim import run_fleet_sim

    set_cache_default(cache)
    _fresh_state()
    started = time.perf_counter()
    result = run_fleet_sim(**FLEET)
    wall = time.perf_counter() - started
    run = result.results[0]
    return {
        "wall_s": round(wall, 3),
        "cache": cache,
        "events_dispatched": run.events_dispatched,
        "efficiency": round(result.efficiency, 6),
        "fraction_saturated": round(result.fraction_saturated, 6),
        "serving_p99_ms": {
            row.name: None if row.p99_ms is None else round(row.p99_ms, 3)
            for row in result.tenant_rows
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers for the parallel pass (default: min(4, cpu_count))",
    )
    parser.add_argument("--out", default="BENCH_PR1.json")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else min(4, os.cpu_count() or 1)

    suite_serial_on = _timed_suite(jobs=None, cache=True)
    suite_serial_off = _timed_suite(jobs=None, cache=False)
    suite_parallel_on = (
        _timed_suite(jobs=jobs, cache=True) if jobs > 1 else None
    )
    mix_on = _timed_mix(cache=True)
    mix_off = _timed_mix(cache=False)
    fleet_on = _timed_fleet(cache=True)
    fleet_off = _timed_fleet(cache=False)
    set_cache_default(None)

    report = {
        "meta": {
            "bench": "smoke",
            "generated": datetime.now(timezone.utc).isoformat(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "subset": SUBSET,
            "duration_s": DURATION,
        },
        "suite": {
            "serial_cache_on": suite_serial_on,
            "serial_cache_off": suite_serial_off,
            "parallel_cache_on": suite_parallel_on,
            "speedup_cache": round(
                suite_serial_off["wall_s"] / max(suite_serial_on["wall_s"], 1e-9),
                3,
            ),
            "speedup_parallel": (
                round(
                    suite_serial_on["wall_s"]
                    / max(suite_parallel_on["wall_s"], 1e-9),
                    3,
                )
                if suite_parallel_on
                else None
            ),
        },
        "mix": {
            "config": {
                "ml": MIX.ml, "policy": MIX.policy, "cpu": MIX.cpu,
                "duration": MIX.duration,
            },
            "cache_on": mix_on,
            "cache_off": mix_off,
            "speedup_cache": round(
                mix_off["wall_s"] / max(mix_on["wall_s"], 1e-9), 3
            ),
        },
        "fleet": {
            "config": dict(FLEET),
            "cache_on": fleet_on,
            "cache_off": fleet_off,
            "speedup_cache": round(
                fleet_off["wall_s"] / max(fleet_on["wall_s"], 1e-9), 3
            ),
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    hit_rate = mix_on["solver_stats"].get("hit_rate", 0.0)
    print(f"wrote {args.out}")
    print(
        f"suite: serial cache-on {suite_serial_on['wall_s']}s, "
        f"cache-off {suite_serial_off['wall_s']}s "
        f"(cache speedup {report['suite']['speedup_cache']}x)"
    )
    if suite_parallel_on:
        print(
            f"suite: --jobs {jobs} {suite_parallel_on['wall_s']}s "
            f"(parallel speedup {report['suite']['speedup_parallel']}x "
            f"on {os.cpu_count()} cpu)"
        )
    print(
        f"mix:   cache-on {mix_on['wall_s']}s, cache-off {mix_off['wall_s']}s, "
        f"hit-rate {hit_rate:.2%}, events {mix_on['events_dispatched']}"
    )
    print(
        f"fleet: cache-on {fleet_on['wall_s']}s, "
        f"cache-off {fleet_off['wall_s']}s, "
        f"efficiency {fleet_on['efficiency']:.3f}, "
        f"events {fleet_on['events_dispatched']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
