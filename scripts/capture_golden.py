#!/usr/bin/env python
"""Capture the golden-equivalence snapshots under ``tests/golden/``.

The control-plane refactor carries a hard guarantee: under
:class:`~repro.control.sensors.PerfectSensors` with actuation faults
disabled, experiment summaries are **bit-identical** to the pre-refactor
implementation. This script produces the reference artifacts the
``tests/integration/test_golden_equivalence.py`` suite compares against:

* ``fig13_small.json`` — a reduced Fig 13 matrix (one ML workload, two CPU
  mixes, all four policies) at an 8 s horizon;
* ``fleet_sim_small.json`` — the per-trial summaries of a 4-node KP fleet
  with batch jobs, two trials.

Run it only when an intentional behaviour change invalidates the goldens::

    PYTHONPATH=src python scripts/capture_golden.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tests", "golden"
)

#: Reduced Fig 13 shape shared with the equivalence test.
FIG13_KWARGS = dict(
    duration=8.0,
    ml_workloads=("cnn1",),
    mixes=(("stream", 12), ("stitch", 4)),
)

#: Reduced fleet-sim shape shared with the equivalence test.
FLEET_KWARGS = dict(
    nodes=4,
    policy="KP",
    routing="interference-aware",
    ml="rnn1",
    batch_jobs=2,
    duration=4.0,
    warmup=1.0,
    trials=2,
    seed=0,
)


def fig13_summary() -> dict:
    """The reduced Fig 13 matrix as an exactly-comparable JSON object."""
    from repro.experiments.fig13_overall import run_fig13

    result = run_fig13(**FIG13_KWARGS)
    return {
        f"{c.ml}+{c.cpu}:{c.policy}": {
            "ml_slowdown": c.ml_slowdown,
            "cpu_norm_throughput": c.cpu_norm_throughput,
        }
        for c in result.cells
    }


def fleet_summary(jobs: int | None = None) -> list[dict]:
    """The reduced fleet-sim per-trial summaries."""
    from repro.experiments.fleet_sim import run_fleet_sim

    result = run_fleet_sim(jobs=jobs, **FLEET_KWARGS)
    return [dict(s) for s in result.summaries]


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    fig13_path = os.path.join(GOLDEN_DIR, "fig13_small.json")
    with open(fig13_path, "w", encoding="utf-8") as handle:
        json.dump(fig13_summary(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {fig13_path}")

    fleet_path = os.path.join(GOLDEN_DIR, "fleet_sim_small.json")
    with open(fleet_path, "w", encoding="utf-8") as handle:
        json.dump(fleet_summary(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {fleet_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
