#!/usr/bin/env python
"""Enforce the package layering of the control-plane architecture.

The refactor's layer diagram (see ``docs/architecture.md``) only stays true
if imports keep flowing downward. This checker walks every module under
``src/repro`` with :mod:`ast` (no imports are executed) and fails when a
package imports a layer it must not know about:

* ``repro.hw`` — the machine model — must not import ``repro.core`` or
  ``repro.control`` (policies and the control plane sit *above* the
  hardware they manipulate);
* ``repro.control`` — sensors/governors/actuators — must not import
  ``repro.experiments`` or ``repro.fleet`` (the control plane serves the
  harnesses, never the reverse);
* ``repro.hostif`` — the simulated host interfaces — must not import
  ``repro.core`` (a kernel interface does not know which policy drives it);
* ``repro.fleet`` / ``repro.control`` / ``repro.obs`` — must not import
  ``repro.incidents`` (the incident layer watches and manipulates the
  fleet through its public hooks; nothing below it may know it exists);
* ``repro.serve`` — the serving control plane — sits directly below
  ``repro.experiments``: it may import ``repro.fleet``, ``repro.control``,
  ``repro.traces`` and ``repro.obs``, but nothing below the experiments
  layer may import ``repro.serve`` back;
* nothing in the modern stack may import the ``repro.cluster`` or
  ``repro.distributed`` deprecation shims — those exist only for
  out-of-tree callers and re-export from the modern homes.

Exit status: 0 when clean, 1 with one ``file:line`` diagnostic per
violation.

Usage::

    python scripts/check_layering.py [--root src/repro]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: layer -> packages it must never import (checked transitively over every
#: module file below the layer's directory).
#: The seed-era compatibility shims; only out-of-tree code may import them.
_SHIMS = frozenset({"cluster", "distributed"})

FORBIDDEN: dict[str, frozenset[str]] = {
    "hw": frozenset({"core", "control", "serve"}) | _SHIMS,
    "control": frozenset({"experiments", "fleet", "incidents", "serve"})
    | _SHIMS,
    "hostif": frozenset({"core", "serve"}) | _SHIMS,
    "fleet": frozenset({"incidents", "serve"}) | _SHIMS,
    "obs": frozenset({"incidents", "serve"}) | _SHIMS,
    "sim": frozenset({"serve"}) | _SHIMS,
    "traces": frozenset({"serve"}) | _SHIMS,
    "workloads": frozenset({"serve"}) | _SHIMS,
    "core": frozenset({"serve"}) | _SHIMS,
    "incidents": frozenset({"serve"}) | _SHIMS,
    "serve": frozenset({"experiments", "incidents"}) | _SHIMS,
}

_PACKAGE = "repro"


def _imported_packages(tree: ast.AST) -> list[tuple[str, int]]:
    """Every ``repro.<pkg>`` top-level package imported, with line numbers."""
    found: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == _PACKAGE and len(parts) > 1:
                    found.append((parts[1], node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolved by the caller's package
                continue
            if node.module is None:
                continue
            parts = node.module.split(".")
            if parts[0] == _PACKAGE:
                if len(parts) > 1:
                    found.append((parts[1], node.lineno))
                else:  # ``from repro import x`` — x names the package
                    found.extend(
                        (alias.name, node.lineno) for alias in node.names
                    )
    return found


def check_layering(root: Path) -> list[str]:
    """Return one diagnostic per layering violation under ``root``."""
    violations: list[str] = []
    for layer, forbidden in sorted(FORBIDDEN.items()):
        layer_dir = root / layer
        files = sorted(layer_dir.rglob("*.py")) if layer_dir.is_dir() else []
        module = root / f"{layer}.py"
        if module.is_file():
            files.append(module)
        for path in files:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for package, lineno in _imported_packages(tree):
                if package in forbidden:
                    violations.append(
                        f"{path}:{lineno}: layer '{layer}' must not import "
                        f"'{_PACKAGE}.{package}'"
                    )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent / "src" / _PACKAGE,
        type=Path,
        help="package root to check (default: src/repro)",
    )
    args = parser.parse_args(argv)
    violations = check_layering(args.root)
    for line in violations:
        print(line, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    checked = ", ".join(sorted(FORBIDDEN))
    print(f"layering OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
