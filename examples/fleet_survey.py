#!/usr/bin/env python
"""Scenario: is memory-bandwidth saturation actually common?

The paper motivates Kelp with a fleet survey (Fig 2): across one server
generation over a day, 16 % of machines see their 99 %-ile memory bandwidth
above 70 % of peak. This example regenerates that survey from the synthetic
fleet model and then zooms into one saturated machine to show what the
distress (FAST_ASSERTED) counter reads while an aggressor runs.

Run:  python examples/fleet_survey.py
"""

from __future__ import annotations

from repro import Node, Placement, Simulator, tpu_host_spec
from repro.fleet.survey import FleetSurvey, fleet_bandwidth_cdf
from repro.node import LO_SUBDOMAIN
from repro.workloads import cpu_workload
from repro.workloads.cpu.base import BatchTask


def survey() -> None:
    cdf = fleet_bandwidth_cdf(FleetSurvey(machines=1000))
    print("Fleet survey — fraction of machines at or below a 99%-ile BW level:")
    for threshold in (0.3, 0.5, 0.7, 0.9):
        fraction = float((cdf.utilization <= threshold).mean())
        print(f"  <= {threshold:.0%} of peak: {fraction:5.1%}")
    print(
        f"\n  => {cdf.fraction_above_70pct:.1%} of machines exceed 70% of "
        "peak at the 99%-ile (paper: 16%)\n"
    )


def zoom_into_one_machine() -> None:
    print("One saturated machine, seen through the perf counters:")
    sim = Simulator()
    node = Node.create(tpu_host_spec(), sim)
    node.machine.set_snc(True)
    aggressor = BatchTask(
        "dram",
        node.machine,
        Placement(
            cores=frozenset(node.lo_subdomain_cores()),
            mem_weights={LO_SUBDOMAIN: 1.0},
        ),
        cpu_workload("dram", "H"),
    )
    aggressor.start()
    node.perf.read("demo")
    sim.run_until(5.0)
    reading = node.perf.read("demo")
    print(f"  socket bandwidth : {reading.socket_bandwidth_gbps[0]:6.1f} GB/s")
    print(f"  loaded latency   : {reading.socket_latency_factor[0]:6.2f}x unloaded")
    print(f"  FAST_ASSERTED    : {reading.socket_saturation[0]:6.1%} of cycles")
    print(f"  core throttle    : {reading.socket_throttle[0]:6.1%} of full issue rate")
    print(
        "\nThe distress signal throttles every core on the socket — including\n"
        "the other NUMA subdomain. That is the pathology Kelp's prefetcher\n"
        "management exists to relieve (Section IV-B)."
    )


def main() -> None:
    survey()
    zoom_into_one_machine()


if __name__ == "__main__":
    main()
