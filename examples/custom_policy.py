#!/usr/bin/env python
"""Scenario: author and evaluate your own isolation policy.

The policy interface (:class:`repro.core.policies.base.IsolationPolicy`) is
open: a policy decides machine preparation, placements, and an optional
control loop. This example implements **StaticHalf** — a naive static
partition that pins the ML task to the high-priority subdomain and CPU tasks
to the other, disables all low-priority prefetchers permanently, and never
adapts — and compares it against Kelp on the Fig 9 mix.

The lesson is the paper's: static throttling over-pays when pressure is low
and the machine's spare capacity is wasted; a feedback runtime adapts.

Run:  python examples/custom_policy.py
"""

from __future__ import annotations

from repro import MixConfig, Node, Simulator, run_colocation, standalone_performance
from repro.node import HI_SUBDOMAIN, LO_SUBDOMAIN
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ParameterSample,
    ROLE_LO,
)
from repro.core.policies.base import ML_CLOS
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile, BatchTask
from repro.workloads.ml.catalog import ml_workload


class StaticHalfPolicy(IsolationPolicy):
    """Static subdomain split with prefetchers permanently off."""

    name = "STATIC"

    def prepare(self) -> None:
        self.node.machine.set_snc(True)
        self._apply_cat()
        for core in self.node.lo_subdomain_cores():
            self.node.msr.set_prefetchers(core, False)

    def ml_placement(self) -> Placement:
        return Placement(
            cores=frozenset(self.node.hi_subdomain_cores()[: self.ml_cores]),
            mem_weights={HI_SUBDOMAIN: 1.0},
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self.node.lo_subdomain_cores()),
                    mem_weights={LO_SUBDOMAIN: 1.0},
                ),
                role=ROLE_LO,
            )
        ]

    @property
    def has_control_loop(self) -> bool:
        return False

    def tick(self) -> None:
        """Static: nothing to do."""

    def parameter_history(self) -> list[ParameterSample]:
        return []


def run_static(intensity: int) -> tuple[float, float]:
    """Run CNN1 + Stitch under StaticHalf (bypassing the registry)."""
    factory = ml_workload("cnn1")
    sim = Simulator()
    node = Node.create(factory.host_spec(), sim)
    policy = StaticHalfPolicy(
        node, factory.default_cores(),
        StaticHalfPolicy.default_qos_profile(
            factory.host_spec(), factory.default_cores()
        ),
    )
    policy.prepare()
    instance = factory.build(node.machine, policy.ml_placement(), warmup_until=6.0)
    from repro.workloads import cpu_workload

    tasks = []
    for plan in policy.plan_cpu(cpu_workload("stitch", intensity)):
        task = BatchTask(
            plan.task_id, node.machine, plan.placement, plan.profile,
            warmup_until=6.0,
        )
        tasks.append(task)
    instance.start()
    for task in tasks:
        task.start()
    sim.run_until(40.0)
    standalone, _ = standalone_performance("cnn1")
    return (
        instance.performance(40.0) / standalone,
        sum(task.throughput(40.0) for task in tasks),
    )


def main() -> None:
    print("Custom StaticHalf policy vs Kelp on CNN1 + Stitch:\n")
    print(f"{'instances':>9}  {'STATIC ml/cpu':>14}  {'KP ml/cpu':>12}")
    for n in (1, 3, 6):
        static_ml, static_cpu = run_static(n)
        kelp = run_colocation(
            MixConfig(ml="cnn1", policy="KP", cpu="stitch", intensity=n)
        )
        print(
            f"{n:>9}  {static_ml:6.2f}/{static_cpu:5.2f}   "
            f"{kelp.ml_perf_norm:6.2f}/{kelp.cpu_throughput:5.2f}"
        )
    print(
        "\nStaticHalf protects the ML task but leaves batch throughput on the\n"
        "table at every pressure level: prefetchers stay off even when the\n"
        "antagonist is mild, and no backfilling reclaims the idle hi-subdomain\n"
        "cores. Kelp's feedback loop pays only when pressure demands it."
    )


if __name__ == "__main__":
    main()
