#!/usr/bin/env python
"""Scenario: protecting an inference server's tail latency.

RNN1 is a pipelined TPU inference service whose beam-search phases run on
the host between accelerator calls (Fig 3 of the paper). A CPU-based
training job (CPUML) lands on the same machine and its thread count grows
over the day. This example sweeps the colocation intensity and reports the
service's QPS and p95 latency under each runtime — the Fig 10 story.

Run:  python examples/inference_qos.py
"""

from __future__ import annotations

from repro import MixConfig, run_colocation


def main() -> None:
    threads = (4, 8, 12, 16)
    print("RNN1 inference + CPUML training — QPS / p95 (normalized)\n")
    header = f"{'policy':8}" + "".join(f"  {n:>4} thr     " for n in threads)
    print(header)
    for policy in ("BL", "CT", "KP-SD", "KP"):
        row = f"{policy:8}"
        for n in threads:
            result = run_colocation(
                MixConfig(ml="rnn1", policy=policy, cpu="cpuml", intensity=n)
            )
            row += (
                f"  {result.ml_perf_norm:4.2f}/{result.ml_tail_norm:4.2f}x   "
            )
        print(row)
    print(
        "\nReading the table: BL loses QPS and inflates the tail as threads\n"
        "grow; KP-SD holds the service harmless but idles half the socket;\n"
        "KP matches its protection while backfilling the spare cores."
    )


if __name__ == "__main__":
    main()
