#!/usr/bin/env python
"""Scenario: see the Fig 3 execution timeline in your terminal.

Traces one window of serial RNN1 requests on the TPU host — standalone and
under a heavy DRAM aggressor — and renders both as ASCII Gantt charts. The
visual claim of Fig 3: the CPU (beam search) slices stretch under
contention while the communication and TPU slices stay fixed, so the whole
iteration dilates from the host side only.

Run:  python examples/timeline_trace.py
"""

from __future__ import annotations

from repro.experiments.fig03_timeline import run_fig03
from repro.sim.gantt import render_gantt


def main() -> None:
    result = run_fig03(requests=40)

    window = 0.08  # seconds of trace to draw

    def clip(intervals):
        t0 = min(i.start for i in intervals)
        return [i for i in intervals if i.end <= t0 + window], t0

    kinds = ["cpu", "communication", "tpu"]
    for label, intervals in (
        ("standalone", result.standalone_intervals),
        ("colocation (DRAM aggressor)", result.colocation_intervals),
    ):
        shown, t0 = clip(intervals)
        print(f"--- {label} ---")
        print(render_gantt(shown, width=72, start=t0, end=t0 + window,
                           kinds=kinds))
        print()

    print(
        f"CPU phase stretch: {result.cpu_stretch:.2f}x "
        f"(paper: up to 1.51x); TPU stretch: {result.tpu_stretch:.2f}x"
    )


if __name__ == "__main__":
    main()
