#!/usr/bin/env python
"""Quickstart: colocate an accelerated trainer with a batch job, with and
without Kelp.

This is the paper's core scenario in a dozen lines: CNN1 (Cloud TPU
training, in-feed bound) shares a host with four instances of Stitch (a
bandwidth-hungry image-stitching batch job). Baseline colocation loses most
of the accelerator's performance; the Kelp runtime — NUMA subdomains,
saturation-driven prefetcher management, and backfilling — recovers it while
keeping most of the batch throughput.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MixConfig, run_colocation, standalone_performance


def main() -> None:
    standalone, _ = standalone_performance("cnn1")
    print(f"CNN1 standalone: {standalone:.2f} steps/s\n")

    print(f"{'policy':8} {'ML perf':>8} {'CPU tput':>9}  notes")
    for policy in ("BL", "CT", "KP-SD", "KP"):
        result = run_colocation(
            MixConfig(ml="cnn1", policy=policy, cpu="stitch", intensity=4)
        )
        note = {
            "BL": "unmanaged colocation",
            "CT": "core throttling + CAT (prior work)",
            "KP-SD": "NUMA subdomains + prefetcher mgmt",
            "KP": "full Kelp (adds backfilling)",
        }[policy]
        print(
            f"{policy:8} {result.ml_perf_norm:8.2f} "
            f"{result.cpu_throughput:9.2f}  {note}"
        )

    print(
        "\nML perf is normalized to standalone (1.0 = no interference);\n"
        "CPU throughput is Stitch work units per second."
    )


if __name__ == "__main__":
    main()
