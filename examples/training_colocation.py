#!/usr/bin/env python
"""Scenario: how much batch work can ride along with an accelerated trainer?

The operator's question behind Fig 9/13/14: given a Cloud TPU host whose
high-priority job is CNN1 training, how many Stitch instances can be packed
on before the accelerator investment is wasted — and which runtime gives the
best trade? This example sweeps Stitch instances and prints per-policy ML
performance, batch throughput, and the paper's efficiency metric
(ML gain per unit of CPU loss, Fig 14).

Run:  python examples/training_colocation.py
"""

from __future__ import annotations

from repro import MixConfig, run_colocation
from repro.metrics.efficiency import efficiency_ratio


def main() -> None:
    instances = (2, 4, 6)
    baseline: dict[int, tuple[float, float]] = {}
    print("CNN1 training + Stitch batch — ML perf / batch throughput\n")
    print(f"{'policy':8}" + "".join(f"  {n} inst       " for n in instances))
    rows: dict[str, dict[int, tuple[float, float]]] = {}
    for policy in ("BL", "CT", "KP-SD", "KP"):
        row = f"{policy:8}"
        rows[policy] = {}
        for n in instances:
            result = run_colocation(
                MixConfig(ml="cnn1", policy=policy, cpu="stitch", intensity=n)
            )
            rows[policy][n] = (result.ml_perf_norm, result.cpu_throughput)
            if policy == "BL":
                baseline[n] = rows[policy][n]
            row += f"  {result.ml_perf_norm:4.2f}/{result.cpu_throughput:5.2f}  "
        print(row)

    print("\nEfficiency (ML gain per unit of CPU loss vs BL, higher is better):")
    for policy in ("CT", "KP-SD", "KP"):
        values = []
        for n in instances:
            ml, cpu = rows[policy][n]
            bl_ml, bl_cpu = baseline[n]
            values.append(
                efficiency_ratio(ml, bl_ml, cpu / bl_cpu, 1.0)
            )
        mean = sum(values) / len(values)
        print(f"  {policy:8} {mean:5.2f}")


if __name__ == "__main__":
    main()
